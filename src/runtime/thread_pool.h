#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace saufno {
namespace runtime {

/// Process-wide work-stealing thread pool.
///
/// Sized once on first use from the SAUFNO_NUM_THREADS environment variable
/// (default: hardware_concurrency); `resize()` exists so tests and benches
/// can sweep thread counts in-process. A pool of size N runs N-1 dedicated
/// workers — the thread that calls `parallel_for` is the Nth lane and
/// executes chunks alongside the workers, so `SAUFNO_NUM_THREADS=1` means
/// fully inline execution with zero worker threads.
///
/// Scheduling: `submit` pushes onto per-worker deques round-robin; a worker
/// drains its own deque LIFO (cache-warm) and, when empty, steals FIFO from
/// its siblings before sleeping. The pool never reorders the *results* of
/// the kernels built on top of it: `parallel_for` chunk boundaries depend
/// only on the grain (see parallel_for.h), so every thread count produces
/// bit-identical tensors.
class ThreadPool {
 public:
  /// The singleton; constructed (and its workers started) on first call.
  static ThreadPool& instance();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Total lanes (workers + the calling thread). Always >= 1.
  int num_threads() const { return n_threads_; }

  /// Tear down the current workers and restart with `n` total lanes
  /// (clamped to >= 1). Blocks until queued tasks have drained and every
  /// worker has joined. Must not race with submissions from other threads;
  /// it exists for benches/tests that sweep thread counts.
  void resize(int n);

  /// Enqueue a task for asynchronous execution. With no workers (pool size
  /// 1) the task runs inline on the calling thread.
  void submit(std::function<void()> task);

  /// Run one queued task on the CALLING thread, if any is available; true
  /// if a task ran. This is the "help" hook for threads blocked in a
  /// structured wait (parallel_for / TaskGroup): instead of idling while
  /// their own chunks are in flight elsewhere, they drain unrelated pool
  /// work. Scans the worker deques FIFO from a rotating start index, so
  /// concurrent helpers spread across queues instead of contending on one.
  bool try_help_one();

  /// Tasks currently queued (submitted, not yet started). Scrape-side
  /// accessor for the `pool.queue_depth` callback gauge.
  int64_t queued_tasks() const {
    return task_count_.load(std::memory_order_relaxed);
  }

 private:
  explicit ThreadPool(int n);
  void start(int n);
  void stop_and_join();
  void worker_loop(std::size_t id);
  /// Pop own work (LIFO) or steal from a sibling (FIFO); true if a task ran.
  bool run_one(std::size_t id);

  struct Worker {
    std::mutex m;
    std::deque<std::function<void()>> q;
  };

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  int n_threads_ = 1;
  std::atomic<std::uint64_t> next_queue_{0};
  std::atomic<std::uint64_t> next_help_{0};
  std::atomic<std::int64_t> task_count_{0};
  std::atomic<bool> stop_{false};
  std::mutex wake_m_;
  std::condition_variable wake_cv_;
};

}  // namespace runtime
}  // namespace saufno
