#pragma once

#include <functional>
#include <memory>

namespace saufno {
namespace runtime {

namespace detail {
struct TaskGroupState;
}

/// Structured group of independent tasks on the shared ThreadPool.
///
///   TaskGroup g;
///   g.run([&] { ... });   // enqueued (or inline at pool size 1)
///   g.run([&] { ... });
///   g.wait();             // blocks until both finish; rethrows first error
///
/// Tasks run at nesting depth spawner+1 — the same lexical-tree depth rule
/// as parallel_for — so a parallel_for inside a task decomposes onto the
/// pool (up to SAUFNO_MAX_NEST) and in_parallel_region() is true inside the
/// task body at every thread count. While wait() blocks, the waiting thread
/// helps by running other queued pool tasks, so nested groups cannot
/// deadlock: every wait chain bottoms out at a task actively executing on
/// some thread.
///
/// TaskGroup imposes no ordering between its tasks; determinism is the
/// caller's contract (disjoint outputs per task, or order-independent
/// combines), exactly as with parallel_for chunks. A group is reusable
/// after wait() returns. Destroying a group with tasks still pending waits
/// for them (swallowing errors) — call wait() to observe exceptions.
class TaskGroup {
 public:
  TaskGroup();
  ~TaskGroup();
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueue one task. May be called from any thread, including from inside
  /// another of the group's tasks (fork-join recursion).
  void run(std::function<void()> fn);

  /// Block until every task run() so far has finished, then rethrow the
  /// first exception any of them threw (if any).
  void wait();

 private:
  std::shared_ptr<detail::TaskGroupState> st_;
};

}  // namespace runtime
}  // namespace saufno
