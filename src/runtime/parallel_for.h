#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace saufno {
namespace runtime {

/// Chunked parallel loop over [begin, end). `fn(chunk_begin, chunk_end)` is
/// invoked over consecutive chunks of exactly `grain` iterations (the last
/// chunk may be short). Chunk boundaries depend only on `grain` — never on
/// the thread count or on scheduling order — so a kernel that writes each
/// output index from exactly one chunk, or a reduction that keeps one
/// partial per chunk and combines them in chunk order, is bit-identical for
/// every SAUFNO_NUM_THREADS. Chunks are claimed dynamically by the pool
/// workers plus the calling thread; the call returns once all chunks have
/// finished. The first exception thrown by `fn` is rethrown on the caller.
///
/// Nested calls (fn itself calling parallel_for, directly or through a
/// TaskGroup) DECOMPOSE onto the pool like top-level ones, up to
/// SAUFNO_MAX_NEST levels deep (default 4; deeper loops run their chunks
/// inline, in chunk order). While a loop waits for chunks in flight on
/// other threads, the waiting thread runs other queued pool tasks instead
/// of idling, so nesting never strands a lane and never deadlocks: a chunk
/// is only "in flight" on a thread actively executing it, so every wait
/// chain bottoms out at a running leaf.
void parallel_for(int64_t begin, int64_t end, int64_t grain,
                  const std::function<void(int64_t, int64_t)>& fn);

/// Run independent tasks concurrently; returns when all have finished.
void parallel_invoke(std::vector<std::function<void()>> fns);

/// Deterministic parallel sum over [0, n): `chunk_sum(b, e)` returns the
/// double partial for one grain-sized chunk; partials are combined in chunk
/// order, so the result is identical for every thread count.
double parallel_sum(int64_t n, int64_t grain,
                    const std::function<double(int64_t, int64_t)>& chunk_sum);

/// True while the calling thread is executing a parallel_for chunk or a
/// TaskGroup task — on every path, including the inline fallbacks (1-lane
/// pool, single chunk, depth cap), so the answer never depends on the
/// thread count.
bool in_parallel_region();

}  // namespace runtime
}  // namespace saufno
