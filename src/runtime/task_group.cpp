#include "runtime/task_group.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <utility>

#include "runtime/task_depth.h"
#include "runtime/thread_pool.h"

namespace saufno {
namespace runtime {
namespace detail {

/// Held by shared_ptr from the group AND every in-flight task wrapper, so a
/// task finishing after the group object is destroyed still has valid state.
struct TaskGroupState {
  std::atomic<int64_t> outstanding{0};
  std::atomic<bool> has_error{false};
  std::exception_ptr eptr;
  std::mutex m;
  std::condition_variable cv;
};

}  // namespace detail

TaskGroup::TaskGroup() : st_(std::make_shared<detail::TaskGroupState>()) {}

TaskGroup::~TaskGroup() {
  try {
    wait();
  } catch (...) {
    // Destructor swallows task errors; call wait() to observe them.
  }
}

void TaskGroup::run(std::function<void()> fn) {
  // Depth is captured HERE, on the spawning thread, and replayed inside the
  // wrapper: the task executes at spawner+1 wherever it lands, so nesting
  // decisions inside it match the single-threaded inline schedule.
  const int depth = detail::task_depth_ref() + 1;
  st_->outstanding.fetch_add(1, std::memory_order_acq_rel);
  auto st = st_;
  ThreadPool::instance().submit([st, depth, fn = std::move(fn)] {
    {
      detail::DepthScope scope(depth);
      try {
        fn();
      } catch (...) {
        std::lock_guard<std::mutex> lk(st->m);
        if (!st->has_error.exchange(true)) {
          st->eptr = std::current_exception();
        }
      }
    }
    if (st->outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(st->m);
      st->cv.notify_all();
    }
  });
}

void TaskGroup::wait() {
  ThreadPool& pool = ThreadPool::instance();
  if (detail::help_depth_ref() < 4) {
    ++detail::help_depth_ref();
    while (st_->outstanding.load(std::memory_order_acquire) > 0) {
      if (!pool.try_help_one()) break;
    }
    --detail::help_depth_ref();
  }
  std::unique_lock<std::mutex> lk(st_->m);
  st_->cv.wait(lk, [&] {
    return st_->outstanding.load(std::memory_order_acquire) == 0;
  });
  if (st_->has_error.load(std::memory_order_acquire)) {
    std::exception_ptr e = st_->eptr;
    st_->eptr = nullptr;
    st_->has_error.store(false, std::memory_order_release);
    lk.unlock();
    std::rethrow_exception(e);
  }
}

}  // namespace runtime
}  // namespace saufno
