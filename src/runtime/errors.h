#pragma once

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>

namespace saufno {
namespace runtime {

/// Typed error taxonomy for the serving runtime. Every failure a client can
/// observe through a submit() call or a future resolves to one of these (all
/// rooted in std::runtime_error, so pre-existing catch sites keep working):
///
///   - OverloadedError:       admission control shed the request (fail-fast
///                            at submit; carries a retry-after hint).
///   - DeadlineExceededError: the request's deadline passed before a result
///                            could be delivered.
///   - CancelledError:        the request's CancelToken fired first.
///   - ShutdownError:         the engine was stopped/drained; the request
///                            was refused or could not be served in time.
///   - RequestError:          THIS request is at fault (invalid input,
///                            isolated per-request failure, non-finite
///                            output) — the engine and its batch-mates are
///                            fine. Messages name the request (submit
///                            sequence number + shape).
class EngineError : public std::runtime_error {
 public:
  explicit EngineError(const std::string& msg) : std::runtime_error(msg) {}
};

/// Thrown by submit() when admission control rejects the request (queue at
/// capacity). `retry_after_ms` estimates when capacity should be available
/// again: current backlog in batches times the recent per-batch serve time.
class OverloadedError : public EngineError {
 public:
  OverloadedError(const std::string& msg, double retry_after_ms)
      : EngineError(msg), retry_after_ms_(retry_after_ms) {}
  double retry_after_ms() const { return retry_after_ms_; }

 private:
  double retry_after_ms_;
};

class DeadlineExceededError : public EngineError {
 public:
  using EngineError::EngineError;
};

class CancelledError : public EngineError {
 public:
  using EngineError::EngineError;
};

class ShutdownError : public EngineError {
 public:
  using EngineError::EngineError;
};

/// Per-request fault: the request itself is invalid or was isolated as the
/// culprit of a batch failure. Batch-mates are unaffected.
class RequestError : public EngineError {
 public:
  using EngineError::EngineError;
};

/// Client-side cancellation handle. The default-constructed token is INERT
/// (never cancelled, no allocation); `CancelToken::make()` returns a live
/// token whose flag is shared between the client and the queued request.
/// `request_cancel()` is thread-safe and idempotent; a cancelled request is
/// completed with CancelledError at dequeue time (it never occupies a batch
/// slot), or at the batcher's pre-forward check if it was already popped.
class CancelToken {
 public:
  CancelToken() = default;

  static CancelToken make() {
    CancelToken t;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  /// No-op on an inert token.
  void request_cancel() {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }

  bool cancelled() const {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

  /// True for tokens created via make() (cancellation possible at all).
  bool valid() const { return flag_ != nullptr; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace runtime
}  // namespace saufno
