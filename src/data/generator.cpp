#include "data/generator.h"

#include <filesystem>

#include "common/logging.h"
#include "data/io.h"

namespace saufno {
namespace data {
namespace {

std::string cache_path(const chip::ChipSpec& spec, const GenConfig& cfg) {
  return cfg.cache_dir + "/" + spec.name + "_r" +
         std::to_string(cfg.resolution) + "_n" +
         std::to_string(cfg.n_samples) + "_s" + std::to_string(cfg.seed) +
         "_f" + std::to_string(cfg.refine) + ".bin";
}

}  // namespace

std::vector<chip::PowerAssignment> regenerate_assignments(
    const chip::ChipSpec& spec, const GenConfig& cfg) {
  Rng rng(cfg.seed);
  chip::PowerGenerator gen(spec);
  std::vector<chip::PowerAssignment> out;
  out.reserve(static_cast<std::size_t>(cfg.n_samples));
  for (int i = 0; i < cfg.n_samples; ++i) out.push_back(gen.sample(rng));
  return out;
}

Dataset generate_dataset(const chip::ChipSpec& spec, const GenConfig& cfg) {
  const std::string path = cache_path(spec, cfg);
  if (cfg.cache && std::filesystem::exists(path)) {
    Dataset d = load_dataset(path);
    SAUFNO_CHECK(d.size() == cfg.n_samples && d.resolution == cfg.resolution,
                 "stale dataset cache: " + path);
    return d;
  }

  const auto device_layers = spec.device_layer_indices();
  const int n_dev = static_cast<int>(device_layers.size());
  const int res = cfg.resolution;
  const int cin = n_dev + 2;  // power maps + (y, x) coordinate channels

  Dataset d;
  d.chip_name = spec.name;
  d.resolution = res;
  d.ambient = spec.ambient;
  d.inputs = Tensor({cfg.n_samples, cin, res, res});
  d.targets = Tensor({cfg.n_samples, n_dev, res, res});

  chip::PowerGenerator pgen(spec);
  thermal::FdmSolver solver;
  const auto assignments = regenerate_assignments(spec, cfg);
  const int64_t plane = static_cast<int64_t>(res) * res;

  for (int s = 0; s < cfg.n_samples; ++s) {
    const auto& pa = assignments[static_cast<std::size_t>(s)];
    // Input power channels.
    const auto maps = pgen.rasterize(pa, res, res);
    float* xin = d.inputs.data() +
                 static_cast<int64_t>(s) * cin * plane;
    for (int c = 0; c < n_dev; ++c) {
      std::copy(maps[static_cast<std::size_t>(c)].begin(),
                maps[static_cast<std::size_t>(c)].end(), xin + c * plane);
    }
    // Coordinate channels (y then x), constant across samples; they give
    // the operator models spatial awareness near the adiabatic walls.
    for (int i = 0; i < res; ++i) {
      for (int j = 0; j < res; ++j) {
        const float y = res > 1 ? static_cast<float>(i) / (res - 1) : 0.f;
        const float x = res > 1 ? static_cast<float>(j) / (res - 1) : 0.f;
        xin[n_dev * plane + i * res + j] = y;
        xin[(n_dev + 1) * plane + i * res + j] = x;
      }
    }
    // Ground truth from the FDM (MTA-substitute) solver.
    const auto grid = thermal::build_grid(spec, pa, res, res, cfg.refine);
    const auto sol = solver.solve(grid);
    SAUFNO_CHECK(sol.converged, "FDM solve failed to converge during " +
                                    spec.name + " data generation");
    float* tout = d.targets.data() +
                  static_cast<int64_t>(s) * n_dev * plane;
    for (int c = 0; c < n_dev; ++c) {
      auto lm = sol.layer_map(grid, device_layers[static_cast<std::size_t>(c)]);
      if (cfg.refine > 1) {
        // The refined grid produces refine*res maps; average down to res
        // so high-fidelity targets align with the model resolution.
        const int rr = res * cfg.refine;
        for (int i = 0; i < res; ++i) {
          for (int j = 0; j < res; ++j) {
            double acc = 0.0;
            for (int a = 0; a < cfg.refine; ++a) {
              for (int b = 0; b < cfg.refine; ++b) {
                acc += lm[static_cast<std::size_t>(i * cfg.refine + a) * rr +
                          (j * cfg.refine + b)];
              }
            }
            tout[c * plane + i * res + j] =
                static_cast<float>(acc / (cfg.refine * cfg.refine));
          }
        }
      } else {
        std::copy(lm.begin(), lm.end(), tout + c * plane);
      }
    }
    if ((s + 1) % 50 == 0) {
      SAUFNO_LOG(kDebug) << spec.name << " data gen: " << (s + 1) << "/"
                         << cfg.n_samples;
    }
  }

  if (cfg.cache) {
    std::filesystem::create_directories(cfg.cache_dir);
    save_dataset(d, path);
  }
  return d;
}

}  // namespace data
}  // namespace saufno
