#pragma once

#include <iosfwd>

#include "data/dataset.h"

namespace saufno {
namespace data {

/// Affine input/target normalization fitted on a training set.
///
/// Inputs: power channels are scaled by the dataset-wide power std (the
/// coordinate channels are already in [0, 1] and pass through). Targets
/// are encoded as (T - ambient) / std(T - ambient): the model learns the
/// temperature rise field, and the same statistics decode predictions back
/// to kelvin for the metrics. The normalizer is fitted once on the
/// low-fidelity training set and REUSED verbatim for fine-tuning and
/// evaluation at other resolutions — mesh invariance requires identical
/// encodings across fidelities.
class Normalizer {
 public:
  Normalizer() = default;

  /// Fit statistics on a training set.
  static Normalizer fit(const Dataset& train, int64_t n_power_channels);

  /// Rebuild from previously fitted statistics (checkpoint loading).
  static Normalizer from_stats(double ambient, double power_scale,
                               double temp_scale, int64_t n_power_channels);

  /// Binary round-trip of the fitted statistics, used by the v2 checkpoint
  /// format so a deployed artifact carries its own encoding. Layout:
  /// ambient f64, power_scale f64, temp_scale f64, n_power i64.
  void serialize(std::ostream& out) const;
  static Normalizer deserialize(std::istream& in);

  Tensor encode_inputs(const Tensor& raw) const;
  Tensor encode_targets(const Tensor& kelvin) const;
  Tensor decode_targets(const Tensor& normalized) const;

  double power_scale() const { return power_scale_; }
  double temp_scale() const { return temp_scale_; }
  double ambient() const { return ambient_; }
  int64_t n_power_channels() const { return n_power_; }

 private:
  double power_scale_ = 1.0;  // std of power-density channels
  double temp_scale_ = 1.0;   // std of temperature rise
  double ambient_ = 0.0;      // K
  int64_t n_power_ = 0;
};

}  // namespace data
}  // namespace saufno
