#include "data/dataset.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace saufno {
namespace data {

std::pair<Tensor, Tensor> Dataset::gather(
    const std::vector<int>& indices) const {
  SAUFNO_CHECK(!indices.empty(), "gather of zero indices");
  const int64_t n = static_cast<int64_t>(indices.size());
  Shape in_shape = inputs.shape();
  Shape out_shape = targets.shape();
  in_shape[0] = n;
  out_shape[0] = n;
  Tensor xi(in_shape), yt(out_shape);
  const int64_t in_stride = inputs.numel() / inputs.size(0);
  const int64_t out_stride = targets.numel() / targets.size(0);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t s = indices[static_cast<std::size_t>(i)];
    SAUFNO_CHECK(s >= 0 && s < size(), "gather index out of range");
    std::copy(inputs.data() + s * in_stride,
              inputs.data() + (s + 1) * in_stride, xi.data() + i * in_stride);
    std::copy(targets.data() + s * out_stride,
              targets.data() + (s + 1) * out_stride,
              yt.data() + i * out_stride);
  }
  return {std::move(xi), std::move(yt)};
}

std::pair<Dataset, Dataset> Dataset::split(int64_t n_first) const {
  SAUFNO_CHECK(n_first >= 0 && n_first <= size(), "bad split point");
  Dataset a = take(n_first);
  Dataset b;
  b.chip_name = chip_name;
  b.resolution = resolution;
  b.ambient = ambient;
  const int64_t rest = size() - n_first;
  std::vector<int> idx(static_cast<std::size_t>(rest));
  std::iota(idx.begin(), idx.end(), static_cast<int>(n_first));
  if (rest > 0) {
    auto [xi, yt] = gather(idx);
    b.inputs = std::move(xi);
    b.targets = std::move(yt);
  }
  return {std::move(a), std::move(b)};
}

Dataset Dataset::take(int64_t n) const {
  SAUFNO_CHECK(n >= 0 && n <= size(), "take out of range");
  Dataset d;
  d.chip_name = chip_name;
  d.resolution = resolution;
  d.ambient = ambient;
  if (n > 0) {
    std::vector<int> idx(static_cast<std::size_t>(n));
    std::iota(idx.begin(), idx.end(), 0);
    auto [xi, yt] = gather(idx);
    d.inputs = std::move(xi);
    d.targets = std::move(yt);
  }
  return d;
}

BatchSampler::BatchSampler(int64_t n, int64_t batch_size, Rng& rng)
    : n_(n), batch_(batch_size), rng_(rng) {
  SAUFNO_CHECK(n > 0 && batch_size > 0, "empty sampler");
  order_.resize(static_cast<std::size_t>(n));
  std::iota(order_.begin(), order_.end(), 0);
  reset();
}

std::vector<int> BatchSampler::next() {
  if (pos_ >= n_) return {};
  const int64_t end = std::min(pos_ + batch_, n_);
  std::vector<int> out(order_.begin() + pos_, order_.begin() + end);
  pos_ = end;
  return out;
}

void BatchSampler::reset() {
  rng_.shuffle(order_);
  pos_ = 0;
}

int64_t BatchSampler::batches_per_epoch() const {
  return (n_ + batch_ - 1) / batch_;
}

}  // namespace data
}  // namespace saufno
