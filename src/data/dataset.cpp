#include "data/dataset.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace saufno {
namespace data {

namespace {

Tensor gather_rows(const Tensor& src, const std::vector<int>& indices,
                   int64_t n_rows) {
  const int64_t n = static_cast<int64_t>(indices.size());
  Shape shape = src.shape();
  shape[0] = n;
  Tensor out(shape);
  const int64_t stride = src.numel() / src.size(0);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t s = indices[static_cast<std::size_t>(i)];
    SAUFNO_CHECK(s >= 0 && s < n_rows, "gather index out of range");
    std::copy(src.data() + s * stride, src.data() + (s + 1) * stride,
              out.data() + i * stride);
  }
  return out;
}

}  // namespace

std::pair<Tensor, Tensor> Dataset::gather(
    const std::vector<int>& indices) const {
  SAUFNO_CHECK(!indices.empty(), "gather of zero indices");
  return {gather_rows(inputs, indices, size()),
          gather_rows(targets, indices, size())};
}

Tensor Dataset::gather_inputs(const std::vector<int>& indices) const {
  SAUFNO_CHECK(!indices.empty(), "gather of zero indices");
  return gather_rows(inputs, indices, size());
}

std::pair<Dataset, Dataset> Dataset::split(int64_t n_first) const {
  SAUFNO_CHECK(n_first >= 0 && n_first <= size(), "bad split point");
  Dataset a = take(n_first);
  Dataset b;
  b.chip_name = chip_name;
  b.resolution = resolution;
  b.ambient = ambient;
  const int64_t rest = size() - n_first;
  std::vector<int> idx(static_cast<std::size_t>(rest));
  std::iota(idx.begin(), idx.end(), static_cast<int>(n_first));
  if (rest > 0) {
    auto [xi, yt] = gather(idx);
    b.inputs = std::move(xi);
    b.targets = std::move(yt);
  }
  return {std::move(a), std::move(b)};
}

Dataset Dataset::take(int64_t n) const {
  SAUFNO_CHECK(n >= 0 && n <= size(), "take out of range");
  Dataset d;
  d.chip_name = chip_name;
  d.resolution = resolution;
  d.ambient = ambient;
  if (n > 0) {
    std::vector<int> idx(static_cast<std::size_t>(n));
    std::iota(idx.begin(), idx.end(), 0);
    auto [xi, yt] = gather(idx);
    d.inputs = std::move(xi);
    d.targets = std::move(yt);
  }
  return d;
}

BatchSampler::BatchSampler(int64_t n, int64_t batch_size, Rng& rng)
    : n_(n), batch_(batch_size), rng_(rng) {
  SAUFNO_CHECK(n > 0 && batch_size > 0, "empty sampler");
  order_.resize(static_cast<std::size_t>(n));
  std::iota(order_.begin(), order_.end(), 0);
  reset();
}

std::vector<int> BatchSampler::next() {
  if (pos_ >= n_) return {};
  const int64_t end = std::min(pos_ + batch_, n_);
  std::vector<int> out(order_.begin() + pos_, order_.begin() + end);
  pos_ = end;
  return out;
}

void BatchSampler::reset() {
  rng_.shuffle(order_);
  pos_ = 0;
}

int64_t BatchSampler::batches_per_epoch() const {
  return (n_ + batch_ - 1) / batch_;
}

}  // namespace data
}  // namespace saufno
