#include "data/normalizer.h"

#include <cmath>
#include <istream>
#include <ostream>

#include "common/logging.h"

namespace saufno {
namespace data {

Normalizer Normalizer::fit(const Dataset& train, int64_t n_power_channels) {
  SAUFNO_CHECK(train.size() > 0, "cannot fit normalizer on empty dataset");
  Normalizer n;
  n.ambient_ = train.ambient;
  n.n_power_ = n_power_channels;

  // Power std over the power channels only.
  {
    const int64_t N = train.inputs.size(0);
    const int64_t C = train.inputs.size(1);
    const int64_t plane = train.inputs.size(2) * train.inputs.size(3);
    SAUFNO_CHECK(n_power_channels <= C, "bad power channel count");
    double sum = 0.0, sq = 0.0;
    int64_t cnt = 0;
    const float* p = train.inputs.data();
    for (int64_t s = 0; s < N; ++s) {
      for (int64_t c = 0; c < n_power_channels; ++c) {
        const float* plane_p = p + (s * C + c) * plane;
        for (int64_t i = 0; i < plane; ++i) {
          sum += plane_p[i];
          sq += static_cast<double>(plane_p[i]) * plane_p[i];
          ++cnt;
        }
      }
    }
    const double mean = sum / cnt;
    const double var = std::max(sq / cnt - mean * mean, 1e-12);
    n.power_scale_ = std::sqrt(var);
  }

  // Temperature-rise std.
  {
    double sum = 0.0, sq = 0.0;
    const float* t = train.targets.data();
    const int64_t m = train.targets.numel();
    for (int64_t i = 0; i < m; ++i) {
      const double rise = t[i] - n.ambient_;
      sum += rise;
      sq += rise * rise;
    }
    const double mean = sum / m;
    const double var = std::max(sq / m - mean * mean, 1e-12);
    n.temp_scale_ = std::sqrt(var);
  }
  return n;
}

Normalizer Normalizer::from_stats(double ambient, double power_scale,
                                  double temp_scale,
                                  int64_t n_power_channels) {
  SAUFNO_CHECK(power_scale > 0.0 && temp_scale > 0.0,
               "normalizer scales must be positive");
  SAUFNO_CHECK(n_power_channels >= 0, "bad power channel count");
  Normalizer n;
  n.ambient_ = ambient;
  n.power_scale_ = power_scale;
  n.temp_scale_ = temp_scale;
  n.n_power_ = n_power_channels;
  return n;
}

void Normalizer::serialize(std::ostream& out) const {
  out.write(reinterpret_cast<const char*>(&ambient_), sizeof(ambient_));
  out.write(reinterpret_cast<const char*>(&power_scale_),
            sizeof(power_scale_));
  out.write(reinterpret_cast<const char*>(&temp_scale_), sizeof(temp_scale_));
  const std::int64_t n_power = n_power_;
  out.write(reinterpret_cast<const char*>(&n_power), sizeof(n_power));
}

Normalizer Normalizer::deserialize(std::istream& in) {
  double ambient = 0.0, power_scale = 0.0, temp_scale = 0.0;
  std::int64_t n_power = 0;
  in.read(reinterpret_cast<char*>(&ambient), sizeof(ambient));
  in.read(reinterpret_cast<char*>(&power_scale), sizeof(power_scale));
  in.read(reinterpret_cast<char*>(&temp_scale), sizeof(temp_scale));
  in.read(reinterpret_cast<char*>(&n_power), sizeof(n_power));
  SAUFNO_CHECK(in.good(), "corrupt checkpoint (normalizer)");
  return from_stats(ambient, power_scale, temp_scale, n_power);
}

Tensor Normalizer::encode_inputs(const Tensor& raw) const {
  SAUFNO_CHECK(raw.dim() == 4, "encode_inputs expects [N,C,H,W]");
  Tensor out = raw.clone();
  const int64_t N = raw.size(0), C = raw.size(1);
  const int64_t plane = raw.size(2) * raw.size(3);
  const float inv = static_cast<float>(1.0 / power_scale_);
  float* p = out.data();
  for (int64_t s = 0; s < N; ++s) {
    for (int64_t c = 0; c < n_power_; ++c) {
      float* pp = p + (s * C + c) * plane;
      for (int64_t i = 0; i < plane; ++i) pp[i] *= inv;
    }
  }
  return out;
}

Tensor Normalizer::encode_targets(const Tensor& kelvin) const {
  Tensor out = kelvin.clone();
  float* p = out.data();
  const float amb = static_cast<float>(ambient_);
  const float inv = static_cast<float>(1.0 / temp_scale_);
  for (int64_t i = 0; i < out.numel(); ++i) p[i] = (p[i] - amb) * inv;
  return out;
}

Tensor Normalizer::decode_targets(const Tensor& normalized) const {
  Tensor out = normalized.clone();
  float* p = out.data();
  const float amb = static_cast<float>(ambient_);
  const float sc = static_cast<float>(temp_scale_);
  for (int64_t i = 0; i < out.numel(); ++i) p[i] = p[i] * sc + amb;
  return out;
}

}  // namespace data
}  // namespace saufno
