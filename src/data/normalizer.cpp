#include "data/normalizer.h"

#include <cmath>

#include "common/logging.h"

namespace saufno {
namespace data {

Normalizer Normalizer::fit(const Dataset& train, int64_t n_power_channels) {
  SAUFNO_CHECK(train.size() > 0, "cannot fit normalizer on empty dataset");
  Normalizer n;
  n.ambient_ = train.ambient;
  n.n_power_ = n_power_channels;

  // Power std over the power channels only.
  {
    const int64_t N = train.inputs.size(0);
    const int64_t C = train.inputs.size(1);
    const int64_t plane = train.inputs.size(2) * train.inputs.size(3);
    SAUFNO_CHECK(n_power_channels <= C, "bad power channel count");
    double sum = 0.0, sq = 0.0;
    int64_t cnt = 0;
    const float* p = train.inputs.data();
    for (int64_t s = 0; s < N; ++s) {
      for (int64_t c = 0; c < n_power_channels; ++c) {
        const float* plane_p = p + (s * C + c) * plane;
        for (int64_t i = 0; i < plane; ++i) {
          sum += plane_p[i];
          sq += static_cast<double>(plane_p[i]) * plane_p[i];
          ++cnt;
        }
      }
    }
    const double mean = sum / cnt;
    const double var = std::max(sq / cnt - mean * mean, 1e-12);
    n.power_scale_ = std::sqrt(var);
  }

  // Temperature-rise std.
  {
    double sum = 0.0, sq = 0.0;
    const float* t = train.targets.data();
    const int64_t m = train.targets.numel();
    for (int64_t i = 0; i < m; ++i) {
      const double rise = t[i] - n.ambient_;
      sum += rise;
      sq += rise * rise;
    }
    const double mean = sum / m;
    const double var = std::max(sq / m - mean * mean, 1e-12);
    n.temp_scale_ = std::sqrt(var);
  }
  return n;
}

Tensor Normalizer::encode_inputs(const Tensor& raw) const {
  SAUFNO_CHECK(raw.dim() == 4, "encode_inputs expects [N,C,H,W]");
  Tensor out = raw.clone();
  const int64_t N = raw.size(0), C = raw.size(1);
  const int64_t plane = raw.size(2) * raw.size(3);
  const float inv = static_cast<float>(1.0 / power_scale_);
  float* p = out.data();
  for (int64_t s = 0; s < N; ++s) {
    for (int64_t c = 0; c < n_power_; ++c) {
      float* pp = p + (s * C + c) * plane;
      for (int64_t i = 0; i < plane; ++i) pp[i] *= inv;
    }
  }
  return out;
}

Tensor Normalizer::encode_targets(const Tensor& kelvin) const {
  Tensor out = kelvin.clone();
  float* p = out.data();
  const float amb = static_cast<float>(ambient_);
  const float inv = static_cast<float>(1.0 / temp_scale_);
  for (int64_t i = 0; i < out.numel(); ++i) p[i] = (p[i] - amb) * inv;
  return out;
}

Tensor Normalizer::decode_targets(const Tensor& normalized) const {
  Tensor out = normalized.clone();
  float* p = out.data();
  const float amb = static_cast<float>(ambient_);
  const float sc = static_cast<float>(temp_scale_);
  for (int64_t i = 0; i < out.numel(); ++i) p[i] = p[i] * sc + amb;
  return out;
}

}  // namespace data
}  // namespace saufno
