#include "data/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace saufno {
namespace data {

std::string Metrics::to_string() const {
  std::ostringstream os;
  os << "RMSE=" << rmse << " MAPE=" << mape << " PAPE=" << pape
     << " Max=" << max_err << " Mean=" << mean_err;
  return os.str();
}

Metrics compute_metrics(const Tensor& pred_k, const Tensor& true_k,
                        double ambient) {
  SAUFNO_CHECK(pred_k.shape() == true_k.shape(),
               "metrics shape mismatch: " + shape_str(pred_k.shape()) +
                   " vs " + shape_str(true_k.shape()));
  SAUFNO_CHECK(pred_k.dim() == 4, "metrics expect [N,C,H,W]");
  const int64_t N = pred_k.size(0);
  const int64_t per = pred_k.numel() / N;
  const float* p = pred_k.data();
  const float* t = true_k.data();

  double se = 0.0, ae = 0.0, ape = 0.0;
  double pape_acc = 0.0, max_acc = 0.0;
  // Floor for the percentage denominator: 1 K of rise. Pixels essentially
  // at ambient would otherwise blow the percentage up on noise.
  constexpr double kRiseFloor = 1.0;

  for (int64_t s = 0; s < N; ++s) {
    const float* ps = p + s * per;
    const float* ts = t + s * per;
    double case_pape = 0.0;
    double pred_max = ps[0], true_max = ts[0];
    for (int64_t i = 0; i < per; ++i) {
      const double err = static_cast<double>(ps[i]) - ts[i];
      se += err * err;
      ae += std::fabs(err);
      const double rise = std::max(static_cast<double>(ts[i]) - ambient,
                                   kRiseFloor);
      const double a = std::fabs(err) / rise;
      ape += a;
      case_pape = std::max(case_pape, a);
      pred_max = std::max(pred_max, static_cast<double>(ps[i]));
      true_max = std::max(true_max, static_cast<double>(ts[i]));
    }
    pape_acc += case_pape;
    max_acc += std::fabs(pred_max - true_max);
  }
  const double total = static_cast<double>(N) * per;
  Metrics m;
  m.rmse = std::sqrt(se / total);
  m.mape = ape / total;
  m.pape = pape_acc / N;
  m.max_err = max_acc / N;
  m.mean_err = ae / total;
  return m;
}

}  // namespace data
}  // namespace saufno
