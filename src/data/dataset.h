#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace saufno {
namespace data {

/// Supervised operator-learning dataset: power-map inputs -> temperature
/// fields, both stored as dense tensors.
///
///   inputs : [N, C_in,  H, W] — per-device-layer power density (W/m^2)
///            followed by two normalized coordinate channels (y, x).
///   targets: [N, C_out, H, W] — per-device-layer temperature (K).
struct Dataset {
  std::string chip_name;
  int resolution = 0;        // H == W == resolution
  double ambient = 0.0;      // K (needed to decode normalized targets)
  Tensor inputs;             // [N, C_in, H, W]
  Tensor targets;            // [N, C_out, H, W]

  int64_t size() const { return inputs.defined() ? inputs.size(0) : 0; }
  int64_t in_channels() const { return inputs.size(1); }
  int64_t out_channels() const { return targets.size(1); }

  /// Row-gather of the given sample indices into fresh tensors.
  std::pair<Tensor, Tensor> gather(const std::vector<int>& indices) const;

  /// Inputs-only row-gather, for inference paths that never touch the
  /// targets (e.g. batched evaluation) and shouldn't pay for copying them.
  Tensor gather_inputs(const std::vector<int>& indices) const;

  /// Deterministic split into [first `n_first` samples, rest]. Generation
  /// already randomizes sample order, so a prefix split is unbiased.
  std::pair<Dataset, Dataset> split(int64_t n_first) const;

  /// First `n` samples (for data-efficiency sweeps).
  Dataset take(int64_t n) const;
};

/// Mini-batch index iterator with per-epoch shuffling.
class BatchSampler {
 public:
  BatchSampler(int64_t n, int64_t batch_size, Rng& rng);
  /// Indices of the next batch; empty when the epoch is exhausted.
  std::vector<int> next();
  void reset();
  int64_t batches_per_epoch() const;

 private:
  int64_t n_, batch_;
  Rng& rng_;
  std::vector<int> order_;
  int64_t pos_ = 0;
};

}  // namespace data
}  // namespace saufno
