#pragma once

#include <string>

#include "data/dataset.h"

namespace saufno {
namespace data {

/// Binary dataset cache IO. Benches reuse cached datasets across runs so
/// the model comparison (minutes of training) is not dominated by solver
/// time. Format: magic, chip name, resolution, ambient, then both tensors
/// as rank + dims + float payload.
void save_dataset(const Dataset& d, const std::string& path);
Dataset load_dataset(const std::string& path);

}  // namespace data
}  // namespace saufno
