#include "data/io.h"

#include <cstdint>
#include <fstream>

#include "common/logging.h"

namespace saufno {
namespace data {
namespace {

constexpr std::uint64_t kMagic = 0x53415546'44415431ULL;  // "SAUFDAT1"

void write_tensor(std::ofstream& out, const Tensor& t) {
  const std::uint64_t rank = static_cast<std::uint64_t>(t.dim());
  out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
  for (int64_t d : t.shape()) {
    const std::int64_t dd = d;
    out.write(reinterpret_cast<const char*>(&dd), sizeof(dd));
  }
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(t.numel() *
                                         static_cast<int64_t>(sizeof(float))));
}

Tensor read_tensor(std::ifstream& in) {
  std::uint64_t rank = 0;
  in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
  SAUFNO_CHECK(in.good() && rank <= 8, "corrupt dataset file (rank)");
  Shape shape(rank);
  for (auto& d : shape) {
    std::int64_t dd = 0;
    in.read(reinterpret_cast<char*>(&dd), sizeof(dd));
    d = dd;
  }
  Tensor t(shape);
  in.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() *
                                       static_cast<int64_t>(sizeof(float))));
  SAUFNO_CHECK(in.good(), "corrupt dataset file (payload)");
  return t;
}

}  // namespace

void save_dataset(const Dataset& d, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  SAUFNO_CHECK(out.good(), "cannot write dataset: " + path);
  const std::uint64_t magic = kMagic;
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  const std::uint64_t name_len = d.chip_name.size();
  out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
  out.write(d.chip_name.data(), static_cast<std::streamsize>(name_len));
  const std::int64_t res = d.resolution;
  out.write(reinterpret_cast<const char*>(&res), sizeof(res));
  out.write(reinterpret_cast<const char*>(&d.ambient), sizeof(d.ambient));
  write_tensor(out, d.inputs);
  write_tensor(out, d.targets);
  SAUFNO_CHECK(out.good(), "dataset write failed: " + path);
}

Dataset load_dataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SAUFNO_CHECK(in.good(), "cannot open dataset: " + path);
  std::uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  SAUFNO_CHECK(magic == kMagic, "bad dataset magic in " + path);
  std::uint64_t name_len = 0;
  in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
  SAUFNO_CHECK(in.good() && name_len < 256, "corrupt dataset (name)");
  Dataset d;
  d.chip_name.resize(name_len);
  in.read(d.chip_name.data(), static_cast<std::streamsize>(name_len));
  std::int64_t res = 0;
  in.read(reinterpret_cast<char*>(&res), sizeof(res));
  d.resolution = static_cast<int>(res);
  in.read(reinterpret_cast<char*>(&d.ambient), sizeof(d.ambient));
  d.inputs = read_tensor(in);
  d.targets = read_tensor(in);
  return d;
}

}  // namespace data
}  // namespace saufno
