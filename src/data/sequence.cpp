#include "data/sequence.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "thermal/transient.h"

namespace saufno {
namespace data {

std::tuple<Tensor, Tensor, Tensor> SequenceDataset::gather(
    const std::vector<int>& indices) const {
  SAUFNO_CHECK(!indices.empty(), "empty gather");
  const int64_t b = static_cast<int64_t>(indices.size());
  const int64_t init_row = init.numel() / size();
  const int64_t pow_row = powers.numel() / size();
  const int64_t tgt_row = targets.numel() / size();
  Tensor bi({b, init.size(1), init.size(2), init.size(3)});
  Tensor bp({b, powers.size(1), powers.size(2), powers.size(3), powers.size(4)});
  Tensor bt({b, targets.size(1), targets.size(2), targets.size(3),
             targets.size(4)});
  for (int64_t i = 0; i < b; ++i) {
    const int64_t s = indices[static_cast<std::size_t>(i)];
    SAUFNO_CHECK(s >= 0 && s < size(), "gather index out of range");
    std::memcpy(bi.data() + i * init_row, init.data() + s * init_row,
                sizeof(float) * static_cast<std::size_t>(init_row));
    std::memcpy(bp.data() + i * pow_row, powers.data() + s * pow_row,
                sizeof(float) * static_cast<std::size_t>(pow_row));
    std::memcpy(bt.data() + i * tgt_row, targets.data() + s * tgt_row,
                sizeof(float) * static_cast<std::size_t>(tgt_row));
  }
  return {std::move(bi), std::move(bp), std::move(bt)};
}

std::pair<SequenceDataset, SequenceDataset> SequenceDataset::split(
    int64_t n_first) const {
  SAUFNO_CHECK(n_first >= 0 && n_first <= size(), "bad split point");
  auto take = [this](int64_t start, int64_t count) {
    SequenceDataset out;
    out.chip_name = chip_name;
    out.resolution = resolution;
    out.ambient = ambient;
    out.dt = dt;
    std::vector<int> idx(static_cast<std::size_t>(count));
    for (int64_t i = 0; i < count; ++i) {
      idx[static_cast<std::size_t>(i)] = static_cast<int>(start + i);
    }
    if (count > 0) {
      std::tie(out.init, out.powers, out.targets) = gather(idx);
    }
    return out;
  };
  return {take(0, n_first), take(n_first, size() - n_first)};
}

Normalizer fit_sequence_normalizer(const SequenceDataset& d) {
  SAUFNO_CHECK(d.size() > 0, "cannot fit normalizer on empty sequence set");
  auto std_of = [](const float* p, int64_t n, double shift) {
    double sum = 0.0, sq = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const double v = p[i] - shift;
      sum += v;
      sq += v * v;
    }
    const double mean = sum / static_cast<double>(n);
    const double var =
        std::max(sq / static_cast<double>(n) - mean * mean, 1e-12);
    return std::sqrt(var);
  };
  const double power_scale = std_of(d.powers.data(), d.powers.numel(), 0.0);
  const double temp_scale =
      std_of(d.targets.data(), d.targets.numel(), d.ambient);
  return Normalizer::from_stats(d.ambient, power_scale, temp_scale,
                                d.power_channels());
}

Tensor coord_channels(int64_t h, int64_t w) {
  Tensor out({2, h, w});
  float* p = out.data();
  for (int64_t i = 0; i < h; ++i) {
    for (int64_t j = 0; j < w; ++j) {
      const float y = h > 1 ? static_cast<float>(i) / (h - 1) : 0.f;
      const float x = w > 1 ? static_cast<float>(j) / (w - 1) : 0.f;
      p[i * w + j] = y;
      p[h * w + i * w + j] = x;
    }
  }
  return out;
}

Tensor assemble_step_input(const Tensor& norm_state, const Tensor& raw_power,
                           const Normalizer& norm) {
  SAUFNO_CHECK(norm_state.dim() == 3 && raw_power.dim() == 3,
               "assemble_step_input expects [C, H, W] fields");
  const int64_t h = norm_state.size(1), w = norm_state.size(2);
  SAUFNO_CHECK(raw_power.size(1) == h && raw_power.size(2) == w,
               "state/power resolution mismatch: " +
                   shape_str(norm_state.shape()) + " vs " +
                   shape_str(raw_power.shape()));
  const int64_t cs = norm_state.size(0), cp = raw_power.size(0);
  const int64_t plane = h * w;
  Tensor in({cs + cp + 2, h, w});
  float* p = in.data();
  std::memcpy(p, norm_state.data(),
              sizeof(float) * static_cast<std::size_t>(cs * plane));
  const float inv = static_cast<float>(1.0 / norm.power_scale());
  const float* pw = raw_power.data();
  float* dst = p + cs * plane;
  for (int64_t i = 0; i < cp * plane; ++i) dst[i] = pw[i] * inv;
  const Tensor coords = coord_channels(h, w);
  std::memcpy(p + (cs + cp) * plane, coords.data(),
              sizeof(float) * static_cast<std::size_t>(2 * plane));
  return in;
}

SequenceDataset generate_transient_sequences(const chip::ChipSpec& spec,
                                             const TransientGenConfig& cfg) {
  SAUFNO_CHECK(cfg.n_sequences > 0 && cfg.steps > 0 && cfg.dt > 0,
               "bad transient generation config");
  SAUFNO_CHECK(cfg.phases >= 1 && cfg.phases <= cfg.steps,
               "phases must be in [1, steps]");
  const auto device_layers = spec.device_layer_indices();
  const int n_dev = static_cast<int>(device_layers.size());
  const int res = cfg.resolution;
  const int64_t plane = static_cast<int64_t>(res) * res;

  SequenceDataset d;
  d.chip_name = spec.name;
  d.resolution = res;
  d.ambient = spec.ambient;
  d.dt = cfg.dt;
  d.init = Tensor({cfg.n_sequences, n_dev, res, res});
  d.powers = Tensor({cfg.n_sequences, cfg.steps, n_dev, res, res});
  d.targets = Tensor({cfg.n_sequences, cfg.steps, n_dev, res, res});

  Rng rng(cfg.seed);
  chip::PowerGenerator pgen(spec);

  for (int s = 0; s < cfg.n_sequences; ++s) {
    // Cold power-on: the trajectory starts from the uniform ambient field.
    float* init_p = d.init.data() + static_cast<int64_t>(s) * n_dev * plane;
    std::fill(init_p, init_p + n_dev * plane,
              static_cast<float>(spec.ambient));
    std::vector<double> field;  // full 3-D field carried phase to phase

    int step0 = 0;
    for (int ph = 0; ph < cfg.phases; ++ph) {
      // Split the window into near-equal segments; the last one takes the
      // remainder so every configuration covers exactly cfg.steps steps.
      const int seg = ph + 1 < cfg.phases
                          ? cfg.steps / cfg.phases
                          : cfg.steps - step0;
      const auto pa = pgen.sample(rng);
      const auto grid = thermal::build_grid(spec, pa, res, res);
      const auto maps = pgen.rasterize(pa, res, res);
      for (int k = step0; k < step0 + seg; ++k) {
        float* pw = d.powers.data() +
                    (static_cast<int64_t>(s) * cfg.steps + k) * n_dev * plane;
        for (int c = 0; c < n_dev; ++c) {
          std::copy(maps[static_cast<std::size_t>(c)].begin(),
                    maps[static_cast<std::size_t>(c)].end(), pw + c * plane);
        }
      }

      thermal::TransientSolver::Options opt;
      opt.dt = cfg.dt;
      opt.steps = seg;
      if (field.empty()) {
        field.assign(static_cast<std::size_t>(grid.num_cells()),
                     spec.ambient);
      }
      const auto res_t = thermal::TransientSolver(opt).solve_from(
          grid, std::move(field),
          [&](int step, const std::vector<double>& f) {
            float* tg = d.targets.data() +
                        (static_cast<int64_t>(s) * cfg.steps + step0 + step) *
                            n_dev * plane;
            for (int c = 0; c < n_dev; ++c) {
              const auto lm = thermal::layer_map_of(
                  f, grid, device_layers[static_cast<std::size_t>(c)]);
              std::copy(lm.begin(), lm.end(), tg + c * plane);
            }
          });
      field = res_t.final_state.temperature;
      step0 += seg;
    }
  }
  return d;
}

}  // namespace data
}  // namespace saufno
