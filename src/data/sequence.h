#pragma once

#include <string>
#include <tuple>
#include <vector>

#include "chip/chips.h"
#include "data/dataset.h"
#include "data/normalizer.h"
#include "data/rollout_spec.h"

namespace saufno {
namespace data {

/// Supervised rollout dataset: trajectories of the transient solver.
///
///   init   : [N, C_state, H, W] — kelvin temperature field at t = 0
///   powers : [N, K, C_power, H, W] — power density (W/m^2) held constant
///            over each step (piecewise-constant power-state sequences)
///   targets: [N, K, C_state, H, W] — kelvin reference field after each step
struct SequenceDataset {
  std::string chip_name;
  int resolution = 0;
  double ambient = 0.0;  // K
  double dt = 0.0;       // s per step
  Tensor init;
  Tensor powers;
  Tensor targets;

  int64_t size() const { return init.defined() ? init.size(0) : 0; }
  int64_t steps() const { return powers.size(1); }
  int64_t state_channels() const { return init.size(1); }
  int64_t power_channels() const { return powers.size(2); }
  RolloutSpec spec() const {
    return RolloutSpec{dt, state_channels(), power_channels()};
  }

  /// Row-gather of the given sequence indices into fresh (init, powers,
  /// targets) tensors.
  std::tuple<Tensor, Tensor, Tensor> gather(
      const std::vector<int>& indices) const;

  /// Deterministic split into [first `n_first` sequences, rest].
  std::pair<SequenceDataset, SequenceDataset> split(int64_t n_first) const;
};

/// Fit the affine normalizer on a sequence set: power scale from the std of
/// all power-channel entries, temperature scale from the std of the rise
/// (targets - ambient) — the same statistics Normalizer::fit computes on a
/// steady-state set, so rollout checkpoints reuse the v2 normalizer block.
Normalizer fit_sequence_normalizer(const SequenceDataset& d);

/// Coordinate channels [2, H, W] (y then x, in [0, 1]) — the same layout
/// data::generate_dataset appends to steady-state inputs.
Tensor coord_channels(int64_t h, int64_t w);

/// Assemble one encoded rollout step input [C_state + C_power + 2, H, W]
/// from the NORMALIZED state and the RAW power map. This is the single
/// codec both the serving session and the offline unroll go through, which
/// is what makes concurrent-session rollouts bit-identical to the offline
/// reference: every float op on the input path is literally the same code.
Tensor assemble_step_input(const Tensor& norm_state, const Tensor& raw_power,
                           const Normalizer& norm);

/// Transient trajectory generation parameters.
struct TransientGenConfig {
  int resolution = 16;   // lateral grid (H == W)
  int n_sequences = 8;
  int steps = 8;         // K steps per trajectory
  int phases = 2;        // power re-sampled this many times over the window
  double dt = 5e-3;      // s per step
  std::uint64_t seed = 7;
};

/// Generate rollout training data by integrating thermal::TransientSolver
/// over random piecewise-constant power sequences, recording the
/// device-layer temperature maps after every implicit-Euler step.
/// Trajectories start from the uniform ambient field (a cold power-on).
SequenceDataset generate_transient_sequences(const chip::ChipSpec& spec,
                                             const TransientGenConfig& cfg);

}  // namespace data
}  // namespace saufno
