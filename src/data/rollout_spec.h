#pragma once

#include <cstdint>

namespace saufno {
namespace data {

/// Step semantics of an autoregressive transient surrogate: the one-step
/// operator advances the device-layer temperature field by `dt` seconds,
///
///   T_{n+1} = F([T_n, P_n, coords]),
///
/// with the input channels laid out as
///   [0, state_channels)                      normalized temperature state
///   [state_channels, +power_channels)        scaled power density
///   last 2                                   (y, x) coordinate channels
/// and the output the normalized temperature state after the step. The spec
/// is persisted in checkpoint v3 meta so a serving pipeline rebuilt from
/// the file knows both the layout and the physical meaning of one step.
///
/// (A standalone header: nn/serialize.h embeds the spec in CheckpointMeta
/// and must not drag the chip/dataset headers of data/sequence.h with it.)
struct RolloutSpec {
  double dt = 0.0;             // seconds advanced per surrogate step
  int64_t state_channels = 0;  // device-layer temperature maps fed back
  int64_t power_channels = 0;  // per-step exogenous power maps

  int64_t in_channels() const { return state_channels + power_channels + 2; }
  int64_t out_channels() const { return state_channels; }
};

}  // namespace data
}  // namespace saufno
