#pragma once

#include <string>

#include "tensor/tensor.h"

namespace saufno {
namespace data {

/// The evaluation metrics of Table II / III (Section IV-B):
///   rmse — root mean squared error over all pixels (K)
///   mape — mean absolute percentage error; computed on the temperature
///          RISE above ambient (|dT_err| / dT_true), since percentages of
///          absolute kelvin would be vanishingly small and meaningless
///   pape — peak absolute percentage error: the worst per-pixel APE of a
///          case, averaged over cases
///   max_err  — "Max": junction-temperature error, |max(pred) - max(true)|
///              averaged over cases (K)
///   mean_err — "Mean": mean absolute error over all pixels (K)
struct Metrics {
  double rmse = 0.0;
  double mape = 0.0;
  double pape = 0.0;
  double max_err = 0.0;
  double mean_err = 0.0;

  std::string to_string() const;
};

/// Compute metrics for predictions vs ground truth, both in kelvin,
/// shape [N, C, H, W]; `ambient` anchors the percentage metrics.
Metrics compute_metrics(const Tensor& pred_k, const Tensor& true_k,
                        double ambient);

}  // namespace data
}  // namespace saufno
