#pragma once

#include "chip/chips.h"
#include "data/dataset.h"
#include "thermal/fdm_solver.h"

namespace saufno {
namespace data {

/// Dataset-generation parameters (Section IV-A "Data Generation": random
/// block powers, MTA-solver outputs as ground truth).
struct GenConfig {
  int resolution = 32;     // lateral grid (H == W)
  int n_samples = 100;
  std::uint64_t seed = 7;
  int refine = 1;          // solver z/lateral refinement (2 = "COMSOL" mesh)
  bool cache = true;       // reuse an on-disk cache when present
  std::string cache_dir = "dataset_cache";
};

/// Generate (or load from cache) a dataset for `spec` by running the FDM
/// solver on `n_samples` random power assignments. Inputs get the power
/// channels plus two coordinate channels; targets are the device-layer
/// temperature maps in kelvin.
Dataset generate_dataset(const chip::ChipSpec& spec, const GenConfig& cfg);

/// The power assignments behind a dataset (regenerated deterministically
/// from the same seed — used by benches that also need solver baselines).
std::vector<chip::PowerAssignment> regenerate_assignments(
    const chip::ChipSpec& spec, const GenConfig& cfg);

}  // namespace data
}  // namespace saufno
