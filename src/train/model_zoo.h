#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/normalizer.h"
#include "nn/module.h"
#include "nn/serialize.h"

namespace saufno {
namespace train {

/// Named factory for every model in the paper's comparison set (Table II):
/// "SAU-FNO", "U-FNO", "FNO", "DeepOHeat", "GAR", plus the "CNN" sanity
/// baseline. U-FNO is built as SAU-FNO minus attention, exactly the
/// ablation relationship Section IV-B leans on.
///
/// `size_hint` scales model capacity: 0 = CPU smoke scale (bench default),
/// 1 = closer to the published configuration.
std::shared_ptr<nn::Module> make_model(const std::string& name,
                                       int64_t in_channels,
                                       int64_t out_channels,
                                       std::uint64_t seed,
                                       int size_hint = 0);

/// The Table II comparison order.
std::vector<std::string> table2_model_names();

/// Write a self-describing v2 checkpoint: weights plus the zoo identity
/// (`name`, channels, `size_hint`) and the fitted normalizer. The result is
/// a deployable artifact — `load_deployable` / `InferenceEngine::
/// from_checkpoint` can rebuild the exact serving pipeline from the file
/// alone.
void save_deployable(const nn::Module& m, const std::string& name,
                     int64_t in_channels, int64_t out_channels,
                     const data::Normalizer& norm, const std::string& path,
                     int size_hint = 0);

struct LoadedModel {
  std::shared_ptr<nn::Module> model;
  nn::CheckpointMeta meta;
};

/// Rebuild a model from a self-describing v2 checkpoint (zoo name and
/// channels come from the file; every parameter is overwritten by the
/// stored weights). Rejects v1 files, which don't record the model
/// identity.
LoadedModel load_deployable(const std::string& path);

}  // namespace train
}  // namespace saufno
