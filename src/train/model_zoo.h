#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/module.h"

namespace saufno {
namespace train {

/// Named factory for every model in the paper's comparison set (Table II):
/// "SAU-FNO", "U-FNO", "FNO", "DeepOHeat", "GAR", plus the "CNN" sanity
/// baseline. U-FNO is built as SAU-FNO minus attention, exactly the
/// ablation relationship Section IV-B leans on.
///
/// `size_hint` scales model capacity: 0 = CPU smoke scale (bench default),
/// 1 = closer to the published configuration.
std::shared_ptr<nn::Module> make_model(const std::string& name,
                                       int64_t in_channels,
                                       int64_t out_channels,
                                       std::uint64_t seed,
                                       int size_hint = 0);

/// The Table II comparison order.
std::vector<std::string> table2_model_names();

}  // namespace train
}  // namespace saufno
