#include "train/rollout.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "autograd/ops.h"
#include "common/logging.h"
#include "common/timer.h"
#include "nn/serialize.h"
#include "optim/lr_schedule.h"
#include "optim/optimizer.h"
#include "tensor/tensor_ops.h"

namespace saufno {
namespace train {
namespace {

/// Step-k slice [B, C, H, W] of a [B, K, C, H, W] trajectory tensor.
Tensor step_slice(const Tensor& t, int64_t k) {
  const int64_t B = t.size(0), K = t.size(1), C = t.size(2);
  const int64_t plane = t.size(3) * t.size(4);
  Tensor out({B, C, t.size(3), t.size(4)});
  const int64_t row = C * plane;
  for (int64_t b = 0; b < B; ++b) {
    std::memcpy(out.data() + b * row, t.data() + (b * K + k) * row,
                sizeof(float) * static_cast<std::size_t>(row));
  }
  return out;
}

/// Non-state input channels for step k: [B, C_power + 2, H, W] — the
/// already-encoded power maps plus the coordinate channels.
Tensor step_aux(const Tensor& enc_powers, int64_t k, const Tensor& coords) {
  const int64_t B = enc_powers.size(0), K = enc_powers.size(1);
  const int64_t Cp = enc_powers.size(2);
  const int64_t plane = enc_powers.size(3) * enc_powers.size(4);
  Tensor aux({B, Cp + 2, enc_powers.size(3), enc_powers.size(4)});
  for (int64_t b = 0; b < B; ++b) {
    std::memcpy(aux.data() + b * (Cp + 2) * plane,
                enc_powers.data() + (b * K + k) * Cp * plane,
                sizeof(float) * static_cast<std::size_t>(Cp * plane));
    std::memcpy(aux.data() + b * (Cp + 2) * plane + Cp * plane, coords.data(),
                sizeof(float) * static_cast<std::size_t>(2 * plane));
  }
  return aux;
}

void check_compatible(const data::SequenceDataset& d,
                      const data::RolloutSpec& spec) {
  SAUFNO_CHECK(d.size() > 0, "empty sequence set");
  SAUFNO_CHECK(d.state_channels() == spec.state_channels &&
                   d.power_channels() == spec.power_channels,
               "sequence set channels do not match the rollout spec");
  SAUFNO_CHECK(std::fabs(d.dt - spec.dt) <=
                   1e-9 * std::max(1.0, std::fabs(spec.dt)),
               "sequence set dt does not match the rollout spec");
}

}  // namespace

double RolloutReport::final_loss() const {
  return epoch_loss.empty() ? 0.0 : epoch_loss.back();
}

RolloutTrainer::RolloutTrainer(nn::Module& model,
                               const data::Normalizer& norm,
                               data::RolloutSpec spec, RolloutTrainConfig cfg)
    : model_(model), norm_(norm), spec_(spec), cfg_(cfg) {
  SAUFNO_CHECK(spec_.dt > 0 && spec_.state_channels >= 1 &&
                   spec_.power_channels >= 0,
               "bad rollout spec");
}

RolloutReport RolloutTrainer::fit(const data::SequenceDataset& train_set) {
  check_compatible(train_set, spec_);
  Timer timer;
  RolloutReport report;
  Rng rng(cfg_.seed);

  const int64_t K = train_set.steps();
  const int64_t Ku = cfg_.unroll_steps > 0
                         ? std::min<int64_t>(cfg_.unroll_steps, K)
                         : K;
  const int teacher_epochs = cfg_.teacher_forced_epochs >= 0
                                 ? cfg_.teacher_forced_epochs
                                 : cfg_.epochs / 2;

  // Pre-encode the whole set once (same trade as Trainer::fit: the sets are
  // small enough to hold both copies, and per-batch encoding would redo the
  // same affine maps every epoch).
  data::SequenceDataset enc;
  enc.init = norm_.encode_targets(train_set.init);
  enc.targets = norm_.encode_targets(train_set.targets);
  enc.powers = train_set.powers.clone();
  enc.powers.mul_(static_cast<float>(1.0 / norm_.power_scale()));
  const Tensor coords =
      data::coord_channels(train_set.init.size(2), train_set.init.size(3));

  optim::Adam opt(model_.parameters(), cfg_.lr, 0.9, 0.999, 1e-8,
                  cfg_.weight_decay);
  optim::StepLR sched(opt, cfg_.lr_step, cfg_.lr_gamma);

  model_.set_training(true);
  data::BatchSampler sampler(train_set.size(), cfg_.batch_size, rng);
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    const bool teacher_forced = epoch < teacher_epochs;
    sampler.reset();
    double loss_acc = 0.0;
    int64_t batches = 0;
    for (auto idx = sampler.next(); !idx.empty(); idx = sampler.next()) {
      auto [bi, bp, bt] = enc.gather(idx);
      Var state(std::move(bi));
      Var total;
      for (int64_t k = 0; k < Ku; ++k) {
        Var in = ops::cat({state, Var(step_aux(bp, k, coords))}, 1);
        Var pred = model_.forward(in);
        Var l = ops::mse_loss(pred, Var(step_slice(bt, k)));
        total = k == 0 ? l : total + l;
        // Teacher forcing feeds the reference state forward (a constant for
        // autograd); free-running feeds the prediction, so the loss
        // backpropagates through the whole unroll.
        state = teacher_forced ? Var(step_slice(bt, k)) : pred;
      }
      Var loss = total * (1.f / static_cast<float>(Ku));
      opt.zero_grad();
      loss.backward();
      opt.step();
      loss_acc += loss.value().item();
      ++batches;
    }
    const double mean_loss = loss_acc / static_cast<double>(batches);
    report.epoch_loss.push_back(mean_loss);
    sched.step();
    if (cfg_.verbose) {
      SAUFNO_INFO << "rollout epoch " << (epoch + 1) << "/" << cfg_.epochs
                  << (teacher_forced ? " [teacher]" : " [free]")
                  << " loss=" << mean_loss << " lr=" << sched.current_lr();
    }
  }
  model_.set_training(false);
  report.seconds = timer.seconds();
  return report;
}

RolloutEval RolloutTrainer::evaluate(const data::SequenceDataset& test_set,
                                     bool teacher_forced) const {
  check_compatible(test_set, spec_);
  NoGradGuard no_grad;
  model_.set_training(false);

  const int64_t K = test_set.steps();
  RolloutEval eval;
  eval.teacher_forced = teacher_forced;
  std::vector<double> abs_sum(static_cast<std::size_t>(K), 0.0);
  std::vector<double> sq_sum(static_cast<std::size_t>(K), 0.0);
  int64_t per_step_count = 0;

  const Tensor coords =
      data::coord_channels(test_set.init.size(2), test_set.init.size(3));
  const int64_t batch = 8;  // bound activation memory, as Trainer::evaluate
  for (int64_t start = 0; start < test_set.size(); start += batch) {
    const int64_t len = std::min(batch, test_set.size() - start);
    std::vector<int> idx(static_cast<std::size_t>(len));
    for (int64_t i = 0; i < len; ++i) {
      idx[static_cast<std::size_t>(i)] = static_cast<int>(start + i);
    }
    auto [bi, bp, bt] = test_set.gather(idx);  // raw kelvin / raw power
    Tensor enc_powers = bp.clone();
    enc_powers.mul_(static_cast<float>(1.0 / norm_.power_scale()));
    Var state(norm_.encode_targets(bi));
    per_step_count += bt.numel() / K;
    for (int64_t k = 0; k < K; ++k) {
      Var in = ops::cat({state, Var(step_aux(enc_powers, k, coords))}, 1);
      Var pred = model_.forward(in);
      const Tensor pred_kelvin = norm_.decode_targets(pred.value());
      const Tensor ref_kelvin = step_slice(bt, k);
      const float* p = pred_kelvin.data();
      const float* r = ref_kelvin.data();
      for (int64_t i = 0; i < ref_kelvin.numel(); ++i) {
        const double e = static_cast<double>(p[i]) - r[i];
        abs_sum[static_cast<std::size_t>(k)] += std::fabs(e);
        sq_sum[static_cast<std::size_t>(k)] += e * e;
      }
      state = teacher_forced ? Var(norm_.encode_targets(ref_kelvin)) : pred;
    }
  }
  for (int64_t k = 0; k < K; ++k) {
    eval.mae_per_step.push_back(abs_sum[static_cast<std::size_t>(k)] /
                                static_cast<double>(per_step_count));
    eval.rmse_per_step.push_back(
        std::sqrt(sq_sum[static_cast<std::size_t>(k)] /
                  static_cast<double>(per_step_count)));
  }
  return eval;
}

Tensor RolloutTrainer::unroll(const Tensor& init_kelvin,
                              const Tensor& powers_raw) const {
  return rollout_unroll(model_, norm_, init_kelvin, powers_raw);
}

Tensor rollout_unroll(nn::Module& model, const data::Normalizer& norm,
                      const Tensor& init_kelvin, const Tensor& powers_raw) {
  SAUFNO_CHECK(init_kelvin.dim() == 3, "unroll expects a [C, H, W] start");
  SAUFNO_CHECK(powers_raw.dim() == 4,
               "unroll expects [K, C_power, H, W] power maps");
  const int64_t K = powers_raw.size(0), cs = init_kelvin.size(0);
  const int64_t cp = powers_raw.size(1);
  const int64_t h = init_kelvin.size(1), w = init_kelvin.size(2);

  NoGradGuard no_grad;
  model.set_training(false);
  Tensor norm_state = norm.encode_targets(init_kelvin);
  Tensor out({K, cs, h, w});
  for (int64_t k = 0; k < K; ++k) {
    const Tensor pk = slice(powers_raw, 0, k, 1).reshape({cp, h, w});
    const Tensor in = data::assemble_step_input(norm_state, pk, norm);
    Var y = model.forward(Var(in.reshape({1, cs + cp + 2, h, w})));
    SAUFNO_CHECK(y.shape() == (Shape{1, cs, h, w}),
                 "rollout model returned unexpected shape " +
                     shape_str(y.shape()));
    norm_state = y.value().reshape({cs, h, w});
    const Tensor kelvin = norm.decode_targets(norm_state);
    std::memcpy(out.data() + k * cs * h * w, kelvin.data(),
                sizeof(float) * static_cast<std::size_t>(cs * h * w));
  }
  return out;
}

void save_rollout_deployable(const nn::Module& m, const std::string& name,
                             const data::Normalizer& norm,
                             const data::RolloutSpec& spec,
                             const std::string& path, int size_hint) {
  SAUFNO_CHECK(spec.dt > 0 && spec.state_channels >= 1 &&
                   spec.power_channels >= 0,
               "bad rollout spec");
  nn::CheckpointMeta meta;
  meta.model_name = name;
  meta.in_channels = spec.in_channels();
  meta.out_channels = spec.out_channels();
  meta.size_hint = size_hint;
  meta.has_normalizer = true;
  meta.normalizer = norm;
  meta.has_rollout = true;
  meta.rollout = spec;
  nn::save_checkpoint(m, path, meta);
}

}  // namespace train
}  // namespace saufno
