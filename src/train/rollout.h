#pragma once

#include <string>
#include <vector>

#include "data/normalizer.h"
#include "data/sequence.h"
#include "nn/module.h"

namespace saufno {
namespace train {

/// Rollout training hyperparameters. The trainer unrolls `unroll_steps`
/// surrogate steps per sequence and averages the per-step normalized MSE.
/// The first `teacher_forced_epochs` feed the REFERENCE state into every
/// step (stable gradients, no error feedback); the remaining epochs run
/// free-running, feeding the model's own prediction back in and
/// backpropagating through the whole unroll (BPTT), which is what teaches
/// the operator to damp its own accumulated error.
struct RolloutTrainConfig {
  int epochs = 10;
  int batch_size = 4;
  double lr = 1e-3;
  double weight_decay = 1e-5;
  int lr_step = 8;           // StepLR period (epochs)
  double lr_gamma = 0.5;
  std::uint64_t seed = 1234;
  int unroll_steps = 0;      // 0 = the full sequence length
  int teacher_forced_epochs = -1;  // -1 = first half of the epochs
  bool verbose = false;
};

struct RolloutReport {
  std::vector<double> epoch_loss;  // mean normalized per-step MSE
  double seconds = 0.0;
  double final_loss() const;
};

/// Per-step rollout error against reference trajectories, in kelvin.
/// Free-running numbers show how error ACCUMULATES over the horizon —
/// the metric that decides whether a surrogate is usable for multi-step
/// serving; teacher-forced numbers isolate the one-step operator quality.
struct RolloutEval {
  bool teacher_forced = false;
  std::vector<double> mae_per_step;   // K, kelvin
  std::vector<double> rmse_per_step;  // K, kelvin
  double final_step_mae() const {
    return mae_per_step.empty() ? 0.0 : mae_per_step.back();
  }
};

/// Trainer for the autoregressive transient surrogate (one-step operator
/// T_{n+1} = F(T_n, P_n) over data::SequenceDataset trajectories).
class RolloutTrainer {
 public:
  RolloutTrainer(nn::Module& model, const data::Normalizer& norm,
                 data::RolloutSpec spec, RolloutTrainConfig cfg = {});

  RolloutReport fit(const data::SequenceDataset& train_set);

  RolloutEval evaluate(const data::SequenceDataset& test_set,
                       bool teacher_forced) const;

  /// Offline free-running rollout of one trajectory: `init_kelvin` is the
  /// [C_state, H, W] starting field, `powers_raw` the [K, C_power, H, W]
  /// per-step power maps; returns the [K, C_state, H, W] kelvin prediction.
  /// Bit-identical to serving the same checkpoint through RolloutEngine —
  /// both paths share data::assemble_step_input and the normalizer codec.
  Tensor unroll(const Tensor& init_kelvin, const Tensor& powers_raw) const;

 private:
  nn::Module& model_;
  const data::Normalizer& norm_;
  data::RolloutSpec spec_;
  RolloutTrainConfig cfg_;
};

/// The unroll above as a free function (the serving-equivalence reference
/// used by tests and benches that have no trainer).
Tensor rollout_unroll(nn::Module& model, const data::Normalizer& norm,
                      const Tensor& init_kelvin, const Tensor& powers_raw);

/// Write a self-describing v3 rollout checkpoint: weights, zoo identity,
/// fitted normalizer AND the rollout step semantics, so
/// `runtime::RolloutEngine::from_checkpoint` rebuilds the whole transient
/// serving pipeline from the file alone.
void save_rollout_deployable(const nn::Module& m, const std::string& name,
                             const data::Normalizer& norm,
                             const data::RolloutSpec& spec,
                             const std::string& path, int size_hint = 0);

}  // namespace train
}  // namespace saufno
