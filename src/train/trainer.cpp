#include "train/trainer.h"

#include "common/logging.h"
#include "common/timer.h"
#include "tensor/tensor_ops.h"
#include "optim/lr_schedule.h"
#include "optim/optimizer.h"

namespace saufno {
namespace train {

double TrainReport::final_loss() const {
  return epoch_loss.empty() ? 0.0 : epoch_loss.back();
}

Trainer::Trainer(nn::Module& model, const data::Normalizer& norm,
                 TrainConfig cfg)
    : model_(model), norm_(norm), cfg_(cfg) {}

TrainReport Trainer::fit(const data::Dataset& train_set) {
  SAUFNO_CHECK(train_set.size() > 0, "empty training set");
  Timer timer;
  TrainReport report;
  Rng rng(cfg_.seed);

  // Pre-encode the whole set once (datasets are small enough to hold both
  // raw and encoded copies; encoding per batch would redo the same work
  // every epoch).
  Tensor enc_in = norm_.encode_inputs(train_set.inputs);
  Tensor enc_tg = norm_.encode_targets(train_set.targets);
  data::Dataset enc;
  enc.chip_name = train_set.chip_name;
  enc.resolution = train_set.resolution;
  enc.ambient = train_set.ambient;
  enc.inputs = std::move(enc_in);
  enc.targets = std::move(enc_tg);

  optim::Adam opt(model_.parameters(), cfg_.lr, 0.9, 0.999, 1e-8,
                  cfg_.weight_decay);
  optim::StepLR sched(opt, cfg_.lr_step, cfg_.lr_gamma);

  model_.set_training(true);
  data::BatchSampler sampler(enc.size(), cfg_.batch_size, rng);
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    sampler.reset();
    double loss_acc = 0.0;
    int64_t batches = 0;
    for (auto idx = sampler.next(); !idx.empty(); idx = sampler.next()) {
      auto [bx, by] = enc.gather(idx);
      Var x(std::move(bx));
      Var y(std::move(by));
      Var pred = model_.forward(x);
      Var loss = ops::mse_loss(pred, y);
      opt.zero_grad();
      loss.backward();
      opt.step();
      loss_acc += loss.value().item();
      ++batches;
    }
    const double mean_loss = loss_acc / static_cast<double>(batches);
    report.epoch_loss.push_back(mean_loss);
    sched.step();
    if (cfg_.verbose) {
      SAUFNO_INFO << "epoch " << (epoch + 1) << "/" << cfg_.epochs
                  << " loss=" << mean_loss << " lr=" << sched.current_lr();
    }
  }
  model_.set_training(false);
  report.seconds = timer.seconds();
  return report;
}

Tensor Trainer::predict(const Tensor& raw_inputs) const {
  Var x(norm_.encode_inputs(raw_inputs));
  Var pred = model_.forward(x);
  return norm_.decode_targets(pred.value());
}

data::Metrics Trainer::evaluate(const data::Dataset& test_set) const {
  SAUFNO_CHECK(test_set.size() > 0, "empty test set");
  // Evaluate in modest batches to bound activation memory.
  const int64_t batch = 16;
  std::vector<Tensor> preds;
  for (int64_t start = 0; start < test_set.size(); start += batch) {
    const int64_t len = std::min(batch, test_set.size() - start);
    std::vector<int> idx(static_cast<std::size_t>(len));
    for (int64_t i = 0; i < len; ++i) idx[static_cast<std::size_t>(i)] =
        static_cast<int>(start + i);
    // Inputs only: the per-sample targets are never touched here (metrics
    // compare against the full target tensor below), so don't copy them.
    preds.push_back(predict(test_set.gather_inputs(idx)));
  }
  Tensor all = preds.size() == 1 ? preds[0] : cat(preds, 0);
  return data::compute_metrics(all, test_set.targets, test_set.ambient);
}

double Trainer::time_inference(const Tensor& raw_inputs, int repeats) const {
  SAUFNO_CHECK(repeats >= 1, "repeats must be >= 1");
  // Warm-up (first call pays one-time allocations).
  (void)predict(raw_inputs);
  Timer t;
  for (int i = 0; i < repeats; ++i) (void)predict(raw_inputs);
  return t.seconds() / repeats / static_cast<double>(raw_inputs.size(0));
}

}  // namespace train
}  // namespace saufno
