#pragma once

#include <functional>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/metrics.h"
#include "data/normalizer.h"
#include "nn/module.h"

namespace saufno {
namespace train {

/// Training hyperparameters (Section IV-A "Training and Testing": Adam,
/// initial lr 1e-4, weight decay 1e-5, decaying lr; fine-tuning starts an
/// order of magnitude lower).
struct TrainConfig {
  int epochs = 20;
  int batch_size = 8;
  double lr = 1e-3;          // the paper's 1e-4 assumes 200+ epochs; the
                             // CPU-scaled default trades epochs for step size
  double weight_decay = 1e-5;
  int lr_step = 8;           // StepLR period (epochs)
  double lr_gamma = 0.5;
  std::uint64_t seed = 1234;
  bool verbose = false;
};

struct TrainReport {
  std::vector<double> epoch_loss;  // mean normalized MSE per epoch
  double seconds = 0.0;
  double final_loss() const;
};

/// Supervised trainer: normalized-MSE (Eq. 12) with Adam + StepLR.
class Trainer {
 public:
  Trainer(nn::Module& model, const data::Normalizer& norm,
          TrainConfig cfg = {});

  /// Train on `train_set` (raw, unnormalized tensors).
  TrainReport fit(const data::Dataset& train_set);

  /// Evaluate on raw data; predictions are decoded to kelvin first.
  data::Metrics evaluate(const data::Dataset& test_set) const;

  /// Decoded (kelvin) predictions for a raw input batch.
  Tensor predict(const Tensor& raw_inputs) const;

  /// Mean seconds per single-sample inference (the §IV-D speed metric).
  double time_inference(const Tensor& raw_inputs, int repeats = 3) const;

 private:
  nn::Module& model_;
  const data::Normalizer& norm_;
  TrainConfig cfg_;
};

}  // namespace train
}  // namespace saufno
