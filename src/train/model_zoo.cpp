#include "train/model_zoo.h"

#include "baselines/cnn.h"
#include "baselines/deep_o_heat.h"
#include "baselines/fno.h"
#include "baselines/gar.h"
#include "common/logging.h"
#include "core/sau_fno.h"

namespace saufno {
namespace train {
namespace {

core::SauFno::Config sau_config(int64_t in_ch, int64_t out_ch, int size_hint,
                                core::AttentionPlacement attn) {
  core::SauFno::Config c;
  c.in_channels = in_ch;
  c.out_channels = out_ch;
  if (size_hint >= 1) {
    // The published structure: [12, 12, 2] with a wide channel dimension.
    c.width = 32;
    c.modes1 = 12;
    c.modes2 = 12;
    c.n_fourier = 2;
    c.n_ufourier = 2;
    c.unet_base = 32;
    c.unet_depth = 4;
    c.attention_dim = 32;
  } else {
    // Smoke scale: same topology, reduced width/modes for one CPU core.
    c.width = 12;
    c.modes1 = 8;
    c.modes2 = 8;
    c.n_fourier = 1;
    c.n_ufourier = 2;
    c.unet_base = 12;
    c.unet_depth = 3;
    c.attention_dim = 12;
  }
  c.attention = attn;
  return c;
}

}  // namespace

std::shared_ptr<nn::Module> make_model(const std::string& name,
                                       int64_t in_channels,
                                       int64_t out_channels,
                                       std::uint64_t seed, int size_hint) {
  Rng rng(seed);
  if (name == "SAU-FNO" || name == "Ours") {
    return std::make_shared<core::SauFno>(
        sau_config(in_channels, out_channels, size_hint,
                   core::AttentionPlacement::kLast),
        rng);
  }
  if (name == "SAU-FNO-micro") {
    // Deliberately tiny SAU-FNO: the full architecture (spectral convs,
    // U-Net branch, attention) at a few thousand parameters. Used for
    // committed golden-regression fixtures (a checkpoint small enough to
    // live in git) and for fast rollout-serving tests; not part of the
    // Table II comparison set.
    core::SauFno::Config c = sau_config(in_channels, out_channels, 0,
                                        core::AttentionPlacement::kLast);
    c.width = 4;
    c.modes1 = 3;
    c.modes2 = 3;
    c.n_fourier = 1;
    c.n_ufourier = 1;
    c.unet_base = 4;
    c.unet_depth = 2;
    c.attention_dim = 4;
    return std::make_shared<core::SauFno>(c, rng);
  }
  if (name == "SAU-FNO-all-attn") {
    return std::make_shared<core::SauFno>(
        sau_config(in_channels, out_channels, size_hint,
                   core::AttentionPlacement::kAll),
        rng);
  }
  if (name == "U-FNO") {
    return std::make_shared<core::SauFno>(
        sau_config(in_channels, out_channels, size_hint,
                   core::AttentionPlacement::kNone),
        rng);
  }
  if (name == "FNO") {
    baselines::Fno::Config c;
    c.in_channels = in_channels;
    c.out_channels = out_channels;
    if (size_hint >= 1) {
      c.width = 32;
      c.modes1 = 12;
      c.modes2 = 12;
      c.n_layers = 4;
    } else {
      c.width = 12;
      c.modes1 = 8;
      c.modes2 = 8;
      c.n_layers = 3;
    }
    return std::make_shared<baselines::Fno>(c, rng);
  }
  if (name == "DeepOHeat") {
    baselines::DeepOHeat::Config c;
    c.in_channels = in_channels;
    c.out_channels = out_channels;
    if (size_hint >= 1) {
      c.sensor_grid = 20;
      c.hidden = 128;
      c.p = 64;
      c.depth = 4;
    } else {
      c.sensor_grid = 12;
      c.hidden = 64;
      c.p = 32;
      c.depth = 3;
    }
    return std::make_shared<baselines::DeepOHeat>(c, rng);
  }
  if (name == "GAR") {
    baselines::Gar::Config c;
    c.in_channels = in_channels;
    c.out_channels = out_channels;
    if (size_hint >= 1) {
      c.coarse_width = 16;
      c.coarse_modes = 8;
      c.coarse_layers = 3;
    }
    return std::make_shared<baselines::Gar>(c, rng);
  }
  if (name == "CNN") {
    baselines::Cnn::Config c;
    c.in_channels = in_channels;
    c.out_channels = out_channels;
    if (size_hint >= 1) {
      c.hidden = 48;
      c.depth = 6;
    }
    return std::make_shared<baselines::Cnn>(c, rng);
  }
  fail("unknown model: " + name);
}

std::vector<std::string> table2_model_names() {
  return {"DeepOHeat", "FNO", "U-FNO", "GAR", "SAU-FNO"};
}

void save_deployable(const nn::Module& m, const std::string& name,
                     int64_t in_channels, int64_t out_channels,
                     const data::Normalizer& norm, const std::string& path,
                     int size_hint) {
  nn::CheckpointMeta meta;
  meta.model_name = name;
  meta.in_channels = in_channels;
  meta.out_channels = out_channels;
  meta.size_hint = size_hint;
  meta.has_normalizer = true;
  meta.normalizer = norm;
  nn::save_checkpoint(m, path, meta);
}

LoadedModel load_deployable(const std::string& path) {
  nn::CheckpointMeta meta = nn::read_checkpoint_meta(path);
  SAUFNO_CHECK(meta.version >= 2 && !meta.model_name.empty(),
               "checkpoint " + path +
                   " is not self-describing (v1 or missing model name); "
                   "re-save it with train::save_deployable");
  SAUFNO_CHECK(meta.in_channels >= 1 && meta.out_channels >= 1,
               "checkpoint " + path + " has no channel counts");
  // The seed only initializes parameters, and every one of them is about to
  // be overwritten by the stored weights (strict load), so any value works.
  auto model = make_model(meta.model_name, meta.in_channels,
                          meta.out_channels, /*seed=*/0, meta.size_hint);
  nn::load_checkpoint(*model, path);
  return {std::move(model), std::move(meta)};
}

}  // namespace train
}  // namespace saufno
