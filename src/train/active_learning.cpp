#include "train/active_learning.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "tensor/tensor_ops.h"
#include "train/model_zoo.h"

namespace saufno {
namespace train {
namespace {

/// Concatenate two datasets along the sample dimension.
data::Dataset concat(const data::Dataset& a, const data::Dataset& b) {
  if (a.size() == 0) return b;
  if (b.size() == 0) return a;
  SAUFNO_CHECK(a.resolution == b.resolution && a.chip_name == b.chip_name,
               "cannot concat mismatched datasets");
  data::Dataset out;
  out.chip_name = a.chip_name;
  out.resolution = a.resolution;
  out.ambient = a.ambient;
  out.inputs = cat({a.inputs, b.inputs}, 0);
  out.targets = cat({a.targets, b.targets}, 0);
  return out;
}

}  // namespace

ActiveLearner::ActiveLearner(Config cfg, const data::Normalizer& norm)
    : cfg_(std::move(cfg)), norm_(norm) {
  SAUFNO_CHECK(cfg_.ensemble_size >= 2,
               "query-by-committee needs at least 2 members");
}

std::vector<double> ActiveLearner::disagreement(
    const data::Dataset& candidates) const {
  SAUFNO_CHECK(!committee_.empty(), "committee not trained yet");
  const int64_t n = candidates.size();
  const int64_t per = candidates.targets.numel() / candidates.targets.size(0);
  // Collect each member's decoded predictions.
  std::vector<Tensor> preds;
  preds.reserve(committee_.size());
  for (const auto& m : committee_) {
    Trainer tr(*m, norm_, cfg_.train);
    preds.push_back(tr.predict(candidates.inputs));
  }
  std::vector<double> scores(static_cast<std::size_t>(n), 0.0);
  const auto k = static_cast<double>(committee_.size());
  for (int64_t s = 0; s < n; ++s) {
    double acc = 0.0;
    for (int64_t i = 0; i < per; ++i) {
      double mean = 0.0;
      for (const auto& p : preds) mean += p.data()[s * per + i];
      mean /= k;
      double var = 0.0;
      for (const auto& p : preds) {
        const double d = p.data()[s * per + i] - mean;
        var += d * d;
      }
      acc += var / k;
    }
    scores[static_cast<std::size_t>(s)] = acc / static_cast<double>(per);
  }
  return scores;
}

ActiveLearner::Report ActiveLearner::run(const data::Dataset& seed_set,
                                         const data::Dataset& pool,
                                         const data::Dataset& test_set) {
  SAUFNO_CHECK(seed_set.size() > 0, "active learning needs a seed set");
  Report report;
  data::Dataset labeled = seed_set;
  std::vector<bool> used(static_cast<std::size_t>(pool.size()), false);

  for (int round = 0; round <= cfg_.rounds; ++round) {
    // (Re)train the committee on the current labeled set.
    committee_.clear();
    for (int m = 0; m < cfg_.ensemble_size; ++m) {
      auto model =
          make_model(cfg_.model_name, labeled.in_channels(),
                     labeled.out_channels(),
                     cfg_.seed + static_cast<std::uint64_t>(97 * m + 1),
                     cfg_.size_hint);
      Trainer tr(*model, norm_, cfg_.train);
      tr.fit(labeled);
      committee_.push_back(std::move(model));
    }
    {
      Trainer tr(*committee_.front(), norm_, cfg_.train);
      report.test_rmse.push_back(tr.evaluate(test_set).rmse);
      report.labeled_sizes.push_back(labeled.size());
    }
    if (round == cfg_.rounds) break;

    // Score the remaining pool and acquire the most contentious samples.
    std::vector<int> remaining;
    for (int i = 0; i < pool.size(); ++i) {
      if (!used[static_cast<std::size_t>(i)]) remaining.push_back(i);
    }
    if (remaining.empty()) break;
    auto [cand_x, cand_y] = pool.gather(remaining);
    data::Dataset cand;
    cand.chip_name = pool.chip_name;
    cand.resolution = pool.resolution;
    cand.ambient = pool.ambient;
    cand.inputs = std::move(cand_x);
    cand.targets = std::move(cand_y);
    const auto scores = disagreement(cand);

    std::vector<int> order(remaining.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return scores[static_cast<std::size_t>(a)] >
             scores[static_cast<std::size_t>(b)];
    });
    const int take = std::min<int>(cfg_.acquire_per_round,
                                   static_cast<int>(order.size()));
    std::vector<int> chosen;
    for (int i = 0; i < take; ++i) {
      const int pool_idx = remaining[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
      chosen.push_back(pool_idx);
      used[static_cast<std::size_t>(pool_idx)] = true;
    }
    report.acquired.push_back(chosen);

    // "Label" the chosen candidates (targets come from the pool, standing
    // in for an on-demand solver call) and grow the training set.
    auto [ax, ay] = pool.gather(chosen);
    data::Dataset acquired;
    acquired.chip_name = pool.chip_name;
    acquired.resolution = pool.resolution;
    acquired.ambient = pool.ambient;
    acquired.inputs = std::move(ax);
    acquired.targets = std::move(ay);
    labeled = concat(labeled, acquired);
  }
  return report;
}

}  // namespace train
}  // namespace saufno
