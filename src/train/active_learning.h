#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "data/normalizer.h"
#include "train/trainer.h"

namespace saufno {
namespace train {

/// Active learning for operator surrogates — the extension direction the
/// paper cites through MLA-FNO [27] ("improves precision and speed by
/// combining active learning and FNO").
///
/// Strategy: query-by-committee. An ensemble of identically-configured
/// models with different initialization seeds is trained on the current
/// labeled set; unlabeled candidates are scored by the ensemble's
/// prediction DISAGREEMENT (mean per-pixel variance), and the most
/// contentious candidates are labeled (solver-simulated) and added. Under
/// a fixed labeling budget this concentrates expensive solver runs on the
/// workloads the surrogate is least sure about.
class ActiveLearner {
 public:
  struct Config {
    int ensemble_size = 2;      // committee members
    int rounds = 3;             // acquisition rounds
    int acquire_per_round = 8;  // labels added per round
    TrainConfig train;          // per-round training config
    std::uint64_t seed = 99;
    /// Factory for committee members (name resolved via the model zoo).
    std::string model_name = "FNO";
    int size_hint = 0;
  };

  ActiveLearner(Config cfg, const data::Normalizer& norm);

  struct Report {
    /// Labeled-set size after each round (including the seed set).
    std::vector<int64_t> labeled_sizes;
    /// Test RMSE after each round.
    std::vector<double> test_rmse;
    /// Indices of `pool` chosen per round (for analysis/tests).
    std::vector<std::vector<int>> acquired;
  };

  /// Run the loop: `seed_set` is the initially labeled data; `pool` plays
  /// the unlabeled candidate store (its targets are only read when a
  /// sample is acquired, mimicking an on-demand solver call); `test_set`
  /// tracks generalization. Returns the final committee's first model via
  /// `final_model()`.
  Report run(const data::Dataset& seed_set, const data::Dataset& pool,
             const data::Dataset& test_set);

  /// Committee head after run() (the member used for reporting).
  std::shared_ptr<nn::Module> final_model() const { return committee_.empty() ? nullptr : committee_.front(); }

  /// Disagreement scores (mean prediction variance per candidate) of the
  /// current committee over a candidate set. Exposed for testing.
  std::vector<double> disagreement(const data::Dataset& candidates) const;

 private:
  Config cfg_;
  const data::Normalizer& norm_;
  std::vector<std::shared_ptr<nn::Module>> committee_;
};

}  // namespace train
}  // namespace saufno
