#pragma once

#include "train/trainer.h"

namespace saufno {
namespace train {

/// Transfer-learning pipeline of Section III-C:
///  1. Pre-train on a large low-fidelity (coarse-resolution) dataset.
///  2. Fine-tune the same weights on a small high-fidelity set with the
///     learning rate dropped by an order of magnitude.
/// Mesh invariance of the operator models makes step 2 possible without
/// any architectural change: the identical parameters run at the finer
/// resolution.
struct TransferConfig {
  TrainConfig pretrain;   // stage 1
  TrainConfig finetune;   // stage 2 (lr should be ~pretrain.lr / 10)

  /// The paper's defaults: fine-tune lr is pretrain lr / 10, fewer epochs.
  static TransferConfig defaults();
};

struct TransferReport {
  TrainReport pretrain;
  TrainReport finetune;
  double total_seconds() const;
};

/// Runs both stages in place on `model`. The normalizer must have been
/// fitted on the LOW-fidelity training set and is reused unchanged for the
/// high-fidelity stage (see data/normalizer.h).
TransferReport transfer_train(nn::Module& model,
                              const data::Normalizer& norm,
                              const data::Dataset& low_fidelity_train,
                              const data::Dataset& high_fidelity_train,
                              const TransferConfig& cfg);

}  // namespace train
}  // namespace saufno
