#include "train/transfer.h"

namespace saufno {
namespace train {

TransferConfig TransferConfig::defaults() {
  TransferConfig c;
  c.pretrain.lr = 1e-3;
  c.finetune = c.pretrain;
  c.finetune.lr = c.pretrain.lr / 10.0;  // "about an order of magnitude
                                         // smaller" (Section III-C)
  c.finetune.epochs = std::max(1, c.pretrain.epochs / 2);
  return c;
}

double TransferReport::total_seconds() const {
  return pretrain.seconds + finetune.seconds;
}

TransferReport transfer_train(nn::Module& model,
                              const data::Normalizer& norm,
                              const data::Dataset& low_fidelity_train,
                              const data::Dataset& high_fidelity_train,
                              const TransferConfig& cfg) {
  TransferReport report;
  {
    Trainer pre(model, norm, cfg.pretrain);
    report.pretrain = pre.fit(low_fidelity_train);
  }
  {
    Trainer fine(model, norm, cfg.finetune);
    report.finetune = fine.fit(high_fidelity_train);
  }
  return report;
}

}  // namespace train
}  // namespace saufno
