#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace saufno {
namespace obs {

/// Scoped tracing spans — pillar 2 of the telemetry subsystem.
///
/// When enabled (SAUFNO_TRACE=<path>, or trace_start() programmatically),
/// every SAUFNO_TRACE_SPAN scope records one Chrome trace-event "complete"
/// event ({"ph":"X", ts, dur}) into a per-thread single-writer buffer:
/// the recording thread appends unsynchronized and publishes with one
/// release store of the event count, so the hot path takes no lock and
/// touches no shared cache line. trace_stop() (or the atexit hook the env
/// knob installs) drains every buffer — live and from exited threads —
/// into trace-event JSON that chrome://tracing and Perfetto load directly.
///
/// When disabled, a span is one relaxed atomic load and a branch; the
/// clock is never read.

namespace detail {
/// 0 = not yet initialized from the environment, 1 = off, 2 = on.
extern std::atomic<int> g_trace_state;
/// Reads SAUFNO_TRACE once, arms tracing + the atexit flush if set.
bool trace_lazy_init();
int64_t trace_now_ns();
void trace_record(const char* name, int64_t t0_ns, int64_t t1_ns);
}  // namespace detail

inline bool trace_enabled() {
  const int s = detail::g_trace_state.load(std::memory_order_acquire);
  if (s != 0) return s == 2;
  return detail::trace_lazy_init();
}

/// Start recording spans; buffered events and any previous output path are
/// discarded. Test/bench hook — production binaries use SAUFNO_TRACE.
void trace_start(const std::string& path);

/// Stop recording and write every buffered event to the active path as
/// trace-event JSON. Idempotent; no-op when tracing never started.
void trace_stop();

/// Events dropped because a thread buffer filled (capacity is
/// SAUFNO_TRACE_BUFFER events per thread, default 65536).
int64_t trace_dropped_events();

/// RAII span. `name` must outlive the process (string literals only): the
/// buffer stores the pointer, not a copy.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (trace_enabled()) {
      name_ = name;
      t0_ns_ = detail::trace_now_ns();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      detail::trace_record(name_, t0_ns_, detail::trace_now_ns());
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  int64_t t0_ns_ = 0;
};

#define SAUFNO_TRACE_CONCAT2(a, b) a##b
#define SAUFNO_TRACE_CONCAT(a, b) SAUFNO_TRACE_CONCAT2(a, b)
/// Scoped span covering the rest of the enclosing block.
#define SAUFNO_TRACE_SPAN(name) \
  ::saufno::obs::TraceSpan SAUFNO_TRACE_CONCAT(_saufno_span_, __LINE__)(name)

}  // namespace obs
}  // namespace saufno
