#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <mutex>

#include "common/env.h"
#include "fft/plan.h"
#include "runtime/workspace.h"

namespace saufno {
namespace obs {

int shard_index() {
  static std::atomic<int> next{0};
  thread_local int idx =
      next.fetch_add(1, std::memory_order_relaxed) & (kCounterShards - 1);
  return idx;
}

namespace {

uint64_t bits_of(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

double double_of(uint64_t b) {
  double v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

/// CAS-fold `v` into an atomic double bit pattern with `op`.
template <typename Op>
void fold_double(std::atomic<uint64_t>& cell, double v, Op op) {
  uint64_t cur = cell.load(std::memory_order_relaxed);
  for (;;) {
    const double folded = op(double_of(cur), v);
    const uint64_t want = bits_of(folded);
    if (want == cur) return;
    if (cell.compare_exchange_weak(cur, want, std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace

Histogram::Histogram()
    : min_bits_(bits_of(std::numeric_limits<double>::infinity())),
      max_bits_(bits_of(-std::numeric_limits<double>::infinity())) {}

int Histogram::bucket_for(double v) {
  if (!(v > 0.0)) return 0;  // underflow bucket: v <= 0 or NaN
  int e;
  const double frac = std::frexp(v, &e);  // v = frac * 2^e, frac in [0.5, 1)
  if (e < kMinExp) return 0;
  if (e > kMaxExp) return kBuckets - 1;  // overflow bucket
  const int sub = std::min(kSubBuckets - 1,
                           static_cast<int>((frac - 0.5) * 2.0 * kSubBuckets));
  return 1 + (e - kMinExp) * kSubBuckets + sub;
}

double Histogram::bucket_value(int bucket) {
  if (bucket <= 0) return 0.0;
  if (bucket >= kBuckets - 1) return std::ldexp(1.0, kMaxExp);
  const int i = bucket - 1;
  const int e = kMinExp + i / kSubBuckets;
  const int sub = i % kSubBuckets;
  // Midpoint of the bucket's [lo, lo + width) slice of octave [2^(e-1), 2^e).
  const double lo = 0.5 + static_cast<double>(sub) / (2.0 * kSubBuckets);
  const double mid = lo + 1.0 / (4.0 * kSubBuckets);
  return std::ldexp(mid, e);
}

void Histogram::record(double v) {
  buckets_[bucket_for(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  fold_double(sum_bits_, v, [](double a, double b) { return a + b; });
  fold_double(min_bits_, v, [](double a, double b) { return b < a ? b : a; });
  fold_double(max_bits_, v, [](double a, double b) { return b > a ? b : a; });
}

double Histogram::sum() const {
  return count() > 0 ? double_of(sum_bits_.load(std::memory_order_relaxed))
                     : 0.0;
}

double Histogram::mean() const {
  const int64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::min() const {
  return count() > 0 ? double_of(min_bits_.load(std::memory_order_relaxed))
                     : 0.0;
}

double Histogram::max() const {
  return count() > 0 ? double_of(max_bits_.load(std::memory_order_relaxed))
                     : 0.0;
}

double Histogram::quantile(double p) const {
  // Bucket counts and the total are read while writers may be hot; clamp
  // the target into whatever total this scan observes so a racing record
  // can never walk the rank past the end.
  int64_t total = 0;
  int64_t counts[kBuckets];
  for (int i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total <= 0) return 0.0;
  p = std::min(1.0, std::max(0.0, p));
  const double lo = min(), hi = max();
  // The tails are tracked exactly — don't route them through a bucket
  // midpoint at all.
  if (p <= 0.0) return lo;
  if (p >= 1.0) return hi;
  // ceil(p * total), rank 1-based; p=0 -> first sample (exact min).
  int64_t rank = static_cast<int64_t>(std::ceil(p * static_cast<double>(total)));
  rank = std::min(total, std::max<int64_t>(1, rank));
  int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) {
      // Clamp the midpoint estimate into the exact observed range so the
      // tails are exact: the first bucket reports min, the last max.
      return std::min(hi, std::max(lo, bucket_value(i)));
    }
  }
  return hi;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(bits_of(0.0), std::memory_order_relaxed);
  min_bits_.store(bits_of(std::numeric_limits<double>::infinity()),
                  std::memory_order_relaxed);
  max_bits_.store(bits_of(-std::numeric_limits<double>::infinity()),
                  std::memory_order_relaxed);
}

struct Registry::Impl {
  mutable std::mutex m;
  // node-based maps: references handed to callers stay valid forever.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
  std::map<std::string, std::function<double()>> callbacks;
};

Registry::Registry() : impl_(new Impl()) {
  // Built-in callback gauges: subsystems that keep their own internal
  // counters (the per-thread workspace arena, the FFT plan cache) surface
  // them at scrape time instead of double-counting on their hot paths.
  impl_->callbacks["arena.hits"] = [] {
    return static_cast<double>(runtime::arena_stats().hits);
  };
  impl_->callbacks["arena.misses"] = [] {
    return static_cast<double>(runtime::arena_stats().misses);
  };
  impl_->callbacks["arena.hit_rate"] = [] {
    return runtime::arena_stats().hit_rate();
  };
  impl_->callbacks["arena.bytes_cached"] = [] {
    return static_cast<double>(runtime::arena_stats().bytes_cached);
  };
  impl_->callbacks["arena.outstanding"] = [] {
    return static_cast<double>(runtime::arena_stats().outstanding);
  };
  impl_->callbacks["arena.reserved_bytes"] = [] {
    return static_cast<double>(runtime::arena_stats().reserved_bytes);
  };
  impl_->callbacks["arena.reservations"] = [] {
    return static_cast<double>(runtime::arena_stats().reservations);
  };
  impl_->callbacks["fft.plan_cache.size"] = [] {
    return static_cast<double>(fft::plan_cache_size());
  };
}

Registry& Registry::instance() {
  // Immortal for the same teardown-ordering reason as the workspace-arena
  // registry: instrumented code on late-exiting threads (pool workers,
  // client threads) must never observe a destroyed registry.
  static Registry* r = new Registry();
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(impl_->m);
  auto& slot = impl_->counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(impl_->m);
  auto& slot = impl_->gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(impl_->m);
  auto& slot = impl_->histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::register_callback(const std::string& name,
                                 std::function<double()> fn) {
  std::lock_guard<std::mutex> lk(impl_->m);
  impl_->callbacks[name] = std::move(fn);
}

void Registry::unregister_callback(const std::string& name) {
  std::lock_guard<std::mutex> lk(impl_->m);
  impl_->callbacks.erase(name);
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  std::lock_guard<std::mutex> lk(impl_->m);
  std::vector<MetricSnapshot> out;
  out.reserve(impl_->counters.size() + impl_->gauges.size() +
              impl_->histograms.size() + impl_->callbacks.size());
  for (const auto& [name, c] : impl_->counters) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricKind::kCounter;
    s.value = static_cast<double>(c->value());
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : impl_->gauges) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricKind::kGauge;
    s.value = static_cast<double>(g->value());
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : impl_->histograms) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricKind::kHistogram;
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    s.p50 = h->quantile(0.50);
    s.p95 = h->quantile(0.95);
    s.p99 = h->quantile(0.99);
    s.p999 = h->quantile(0.999);
    out.push_back(std::move(s));
  }
  for (const auto& [name, fn] : impl_->callbacks) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricKind::kCallback;
    s.value = fn();
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lk(impl_->m);
  for (auto& [name, c] : impl_->counters) c->reset();
  for (auto& [name, g] : impl_->gauges) g->reset();
  for (auto& [name, h] : impl_->histograms) h->reset();
}

namespace {
// -1 = follow the env knob; 0/1 = forced by force_profile_kernels.
std::atomic<int> g_profile_override{-1};

bool profile_env() {
  static const bool on = env_int_in_range("SAUFNO_PROFILE_KERNELS", 0, 0, 1) != 0;
  return on;
}
}  // namespace

bool profile_kernels() {
  const int o = g_profile_override.load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  return profile_env();
}

void force_profile_kernels(bool on) {
  g_profile_override.store(on ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace saufno
