#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "common/env.h"
#include "common/logging.h"

namespace saufno {
namespace obs {
namespace detail {

std::atomic<int> g_trace_state{0};

namespace {

struct Event {
  const char* name;
  int64_t t0_ns;
  int64_t t1_ns;
  uint32_t tid;
};

int buffer_capacity() {
  static const int cap =
      env_int_in_range("SAUFNO_TRACE_BUFFER", 65536, 1024, 1 << 24);
  return cap;
}

/// Single-writer event buffer: the owning thread appends and publishes via
/// `n` (release); readers (trace_stop) load `n` (acquire) and read only the
/// published prefix. Fixed capacity, so publication never reallocates under
/// a reader.
struct TraceBuffer {
  std::vector<Event> events;
  std::atomic<std::size_t> n{0};
  std::atomic<int64_t> dropped{0};
  uint32_t tid = 0;
};

struct TraceRegistry {
  std::mutex m;
  std::vector<TraceBuffer*> buffers;  // live + orphaned; never freed
  uint32_t next_tid = 1;
  std::string path;
  int64_t epoch_ns = 0;  // span timestamps are relative to trace_start
};

TraceRegistry& trace_registry() {
  // Immortal: spans on late-exiting threads must never touch a destroyed
  // registry (same teardown-ordering rule as the workspace arena).
  static TraceRegistry* r = new TraceRegistry();
  return *r;
}

/// The calling thread's buffer. Allocated on first span, registered
/// immortal: a thread that exits mid-trace leaves its events behind for the
/// final flush instead of tearing them down.
TraceBuffer& local_buffer() {
  thread_local TraceBuffer* buf = [] {
    auto* b = new TraceBuffer();
    b->events.resize(static_cast<std::size_t>(buffer_capacity()));
    auto& r = trace_registry();
    std::lock_guard<std::mutex> lk(r.m);
    b->tid = r.next_tid++;
    r.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

void json_escape_to(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof(hex), "\\u%04x", c);
      out += hex;
    } else {
      out.push_back(c);
    }
  }
}

}  // namespace

int64_t trace_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void trace_record(const char* name, int64_t t0_ns, int64_t t1_ns) {
  TraceBuffer& b = local_buffer();
  const std::size_t i = b.n.load(std::memory_order_relaxed);
  if (i >= b.events.size()) {
    b.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  b.events[i] = Event{name, t0_ns, t1_ns, b.tid};
  b.n.store(i + 1, std::memory_order_release);
}

bool trace_lazy_init() {
  // The mutex makes concurrent first spans race-free; the winner arms the
  // state and everyone re-reads it.
  auto& r = trace_registry();
  std::lock_guard<std::mutex> lk(r.m);
  int s = g_trace_state.load(std::memory_order_acquire);
  if (s != 0) return s == 2;
  const char* path = std::getenv("SAUFNO_TRACE");
  if (path == nullptr || path[0] == '\0') {
    g_trace_state.store(1, std::memory_order_release);
    return false;
  }
  r.path = path;
  r.epoch_ns = trace_now_ns();
  g_trace_state.store(2, std::memory_order_release);
  // Flush when the process exits normally — serving binaries need no
  // explicit shutdown call.
  std::atexit([] { trace_stop(); });
  SAUFNO_INFO << "tracing spans to " << r.path
              << " (SAUFNO_TRACE); open in chrome://tracing or Perfetto";
  return true;
}

}  // namespace detail

void trace_start(const std::string& path) {
  using namespace detail;
  auto& r = trace_registry();
  std::lock_guard<std::mutex> lk(r.m);
  for (TraceBuffer* b : r.buffers) {
    b->n.store(0, std::memory_order_release);
    b->dropped.store(0, std::memory_order_relaxed);
  }
  r.path = path;
  r.epoch_ns = trace_now_ns();
  g_trace_state.store(2, std::memory_order_release);
}

void trace_stop() {
  using namespace detail;
  auto& r = trace_registry();
  std::lock_guard<std::mutex> lk(r.m);
  if (g_trace_state.load(std::memory_order_acquire) != 2) return;
  // Disable first: spans that begin after this store see tracing off and
  // record nothing; spans already past the enabled check may still publish
  // into their buffer, but we only read each buffer's published prefix, so
  // the flush below is race-free either way.
  g_trace_state.store(1, std::memory_order_release);

  std::FILE* f = std::fopen(r.path.c_str(), "w");
  if (f == nullptr) {
    SAUFNO_WARN << "could not open trace output " << r.path;
    return;
  }
  std::string out;
  out.reserve(1 << 16);
  out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  int64_t dropped = 0;
  for (TraceBuffer* b : r.buffers) {
    const std::size_t n = b->n.load(std::memory_order_acquire);
    dropped += b->dropped.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < n; ++i) {
      const Event& e = b->events[i];
      if (!first) out += ",\n";
      first = false;
      char line[160];
      // Chrome trace events use MICROsecond ts/dur; keep ns precision via
      // the fractional part.
      std::snprintf(line, sizeof(line),
                    "{\"ph\": \"X\", \"pid\": 1, \"tid\": %u, \"ts\": %.3f, "
                    "\"dur\": %.3f, \"name\": \"",
                    e.tid, static_cast<double>(e.t0_ns - r.epoch_ns) / 1e3,
                    static_cast<double>(e.t1_ns - e.t0_ns) / 1e3);
      out += line;
      json_escape_to(out, e.name);
      out += "\"}";
    }
    b->n.store(0, std::memory_order_release);
    b->dropped.store(0, std::memory_order_relaxed);
  }
  out += "\n]}\n";
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  if (dropped > 0) {
    SAUFNO_WARN << "trace dropped " << dropped
                << " events (raise SAUFNO_TRACE_BUFFER)";
  }
}

int64_t trace_dropped_events() {
  using namespace detail;
  auto& r = trace_registry();
  std::lock_guard<std::mutex> lk(r.m);
  int64_t dropped = 0;
  for (TraceBuffer* b : r.buffers) {
    dropped += b->dropped.load(std::memory_order_relaxed);
  }
  return dropped;
}

}  // namespace obs
}  // namespace saufno
