#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace saufno {
namespace obs {

/// Metrics registry — pillar 1 of the telemetry subsystem.
///
/// Hot-path cost model: every mutation is a single relaxed atomic RMW on a
/// cell this thread (almost always) owns exclusively. Counters shard their
/// cells across cache lines and hand each thread its own slot, so concurrent
/// increments never bounce a line; histograms bump one bucket of a
/// log-spaced table. Aggregation (summing shards, walking buckets) happens
/// only on scrape. Instrumented code caches the metric reference once
/// (`static obs::Counter& c = obs::counter("...")`) so the name lookup and
/// its mutex are off the hot path entirely.

/// Index of the calling thread's counter shard. Slots are handed out
/// round-robin at first use; with more live threads than shards two threads
/// may share a slot, which costs contention but never correctness (the RMW
/// is atomic).
int shard_index();

constexpr int kCounterShards = 64;

/// Monotone event counter. `add` is wait-free; `value` sums the shards.
class Counter {
 public:
  void add(int64_t v = 1) {
    cells_[shard_index()].v.fetch_add(v, std::memory_order_relaxed);
  }
  int64_t value() const {
    int64_t total = 0;
    for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<int64_t> v{0};
  };
  Cell cells_[kCounterShards];
};

/// Point-in-time integer level (queue depth, live sessions). `add` keeps the
/// gauge aggregate-correct when many call sites move it (+1 on enqueue, -1
/// on dequeue, across any number of instances sharing the name).
class Gauge {
 public:
  void add(int64_t v) { v_.fetch_add(v, std::memory_order_relaxed); }
  void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Log-bucketed histogram over positive doubles.
///
/// Buckets split each power-of-two octave into kSubBuckets linear slices,
/// so `quantile(p)` (bucket-midpoint interpolation) carries a relative
/// error of at most ~1/(2*kSubBuckets) ≈ 6.25% — plenty for latency
/// percentiles, and O(buckets) per query instead of the
/// copy-and-sort-8192-samples scan it replaces. Exact min/max/sum/count are
/// tracked alongside, so `quantile(0)`/`quantile(1)` and `mean()` are
/// exact. Values <= 0 (and NaN) land in the underflow bucket and are
/// reported by quantile() as the exact observed minimum.
class Histogram {
 public:
  static constexpr int kSubBuckets = 8;   // slices per octave
  static constexpr int kMinExp = -10;     // 2^-11 ≈ 4.9e-4: smallest octave
  static constexpr int kMaxExp = 40;      // 2^40 ≈ 1.1e12: largest octave
  static constexpr int kBuckets =
      (kMaxExp - kMinExp + 1) * kSubBuckets + 2;  // + underflow/overflow

  void record(double v);
  /// p in [0, 1]. Returns 0 when empty.
  double quantile(double p) const;
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  double mean() const;
  double min() const;  // exact; 0 when empty
  double max() const;  // exact; 0 when empty
  void reset();

  /// Bucket index a value lands in (exposed for the exporters and tests).
  static int bucket_for(double v);
  /// Representative (midpoint) value of a bucket.
  static double bucket_value(int bucket);
  int64_t bucket_count(int bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> buckets_[kBuckets] = {};
  std::atomic<int64_t> count_{0};
  // Doubles stored as bit patterns: pre-C++20 there is no atomic<double>
  // fetch_add, so sum/min/max fold with a CAS loop — fine at the per-batch
  // / per-kernel-call frequencies histograms are recorded at.
  std::atomic<uint64_t> sum_bits_{0};
  std::atomic<uint64_t> min_bits_;
  std::atomic<uint64_t> max_bits_;

 public:
  Histogram();
};

enum class MetricKind { kCounter, kGauge, kHistogram, kCallback };

/// One scraped metric. For histograms the quantile summary is materialized
/// at scrape time so exporters never touch live atomics twice.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;  // counter/gauge/callback value
  // Histogram summary:
  int64_t count = 0;
  double sum = 0.0, min = 0.0, max = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0, p999 = 0.0;
};

/// Name-keyed owner of every metric in the process. Metrics are created on
/// first lookup and never destroyed (the registry is immortal, like the
/// workspace-arena registry, so instrumented code in late-exiting threads
/// can never touch a dead metric). Callback gauges let subsystems with
/// their own internal counters (workspace arena, FFT plan cache, thread
/// pool queue) surface values at scrape time without restructuring their
/// hot paths.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  /// Registered callbacks are invoked on every snapshot(); re-registering a
  /// name replaces the previous callback (used by ThreadPool::resize).
  void register_callback(const std::string& name, std::function<double()> fn);
  void unregister_callback(const std::string& name);

  /// Consistent-enough view for exporters: values are read metric-by-metric
  /// while writers keep running (each individual read is atomic; the scrape
  /// as a whole is not a cross-metric snapshot, which monitoring never
  /// needs). Sorted by name.
  std::vector<MetricSnapshot> snapshot() const;

  /// Zero every counter/gauge/histogram (bench + test hook). Callback
  /// gauges read live state and are unaffected.
  void reset();

 private:
  Registry();
  struct Impl;
  Impl* impl_;  // immortal, never freed
};

/// Convenience lookups — the idiomatic instrumentation pattern is
///   static obs::Counter& c = obs::counter("subsys.event");
///   c.add();
inline Counter& counter(const std::string& name) {
  return Registry::instance().counter(name);
}
inline Gauge& gauge(const std::string& name) {
  return Registry::instance().gauge(name);
}
inline Histogram& histogram(const std::string& name) {
  return Registry::instance().histogram(name);
}

/// True when SAUFNO_PROFILE_KERNELS is set (or force_profile_kernels(true)
/// was called): gemm / FFT drivers then time themselves into
/// `kernel.*` histograms. A single relaxed bool load when disabled.
bool profile_kernels();
/// Programmatic override for benches/tests (wins over the env knob).
void force_profile_kernels(bool on);

}  // namespace obs
}  // namespace saufno
