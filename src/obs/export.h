#pragma once

#include <string>

namespace saufno {
namespace obs {

/// Exporters — pillar 3 of the telemetry subsystem. Both walk one
/// Registry::snapshot(), so a scrape is safe while every writer is hot.

/// JSON object mapping metric name -> value (counters/gauges/callbacks) or
/// -> {count, sum, min, max, p50, p95, p99, p999} (histograms). Embedded
/// verbatim in every BENCH_*.json and printable by serving binaries.
std::string dump_json();

/// Prometheus-style text exposition: one `# TYPE` line per metric, metric
/// names with dots mapped to underscores, histograms as
/// <name>_count/_sum/_min/_max plus {quantile="..."} summary samples.
std::string dump_prometheus();

}  // namespace obs
}  // namespace saufno
