#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"

namespace saufno {
namespace obs {

/// RAII kernel timer behind the SAUFNO_PROFILE_KERNELS knob. Disabled (the
/// default) it costs one relaxed load and a branch — no clock read, no
/// histogram touch — so the gemm/FFT hot paths stay unperturbed. Enabled,
/// the elapsed microseconds land in `hist` and, when tracing is also on,
/// the interval is emitted as a span (`name` must be a string literal).
///
/// Usage at a kernel entry point:
///   static obs::Histogram& h = obs::histogram("kernel.gemm_us");
///   obs::KernelTimer timer(h, "kernel.gemm");
class KernelTimer {
 public:
  KernelTimer(Histogram& hist, const char* name) {
    if (profile_kernels()) {
      hist_ = &hist;
      name_ = name;
      t0_ns_ = detail::trace_now_ns();
    }
  }
  ~KernelTimer() {
    if (hist_ != nullptr) {
      const int64_t t1_ns = detail::trace_now_ns();
      hist_->record(static_cast<double>(t1_ns - t0_ns_) / 1e3);
      if (trace_enabled()) detail::trace_record(name_, t0_ns_, t1_ns);
    }
  }
  KernelTimer(const KernelTimer&) = delete;
  KernelTimer& operator=(const KernelTimer&) = delete;

 private:
  Histogram* hist_ = nullptr;
  const char* name_ = nullptr;
  int64_t t0_ns_ = 0;
};

}  // namespace obs
}  // namespace saufno
