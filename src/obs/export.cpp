#include "obs/export.h"

#include <cstdio>

#include "common/json_writer.h"
#include "obs/metrics.h"

namespace saufno {
namespace obs {
namespace {

std::string prom_name(const std::string& name) {
  std::string out = "saufno_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string num(double v) {
  char buf[64];
  // %.17g round-trips doubles; integers render without a trailing ".0".
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string dump_json() {
  JsonWriter w;
  w.begin_object();
  for (const MetricSnapshot& s : Registry::instance().snapshot()) {
    if (s.kind == MetricKind::kHistogram) {
      w.key(s.name);
      w.begin_object();
      w.field("count", s.count);
      w.field("sum", s.sum, 9);
      w.field("min", s.min, 9);
      w.field("max", s.max, 9);
      w.field("p50", s.p50, 9);
      w.field("p95", s.p95, 9);
      w.field("p99", s.p99, 9);
      w.field("p999", s.p999, 9);
      w.end_object();
    } else {
      w.field(s.name, s.value, 6);
    }
  }
  w.end_object();
  return w.str();
}

std::string dump_prometheus() {
  std::string out;
  for (const MetricSnapshot& s : Registry::instance().snapshot()) {
    const std::string n = prom_name(s.name);
    switch (s.kind) {
      case MetricKind::kCounter:
        out += "# TYPE " + n + " counter\n";
        out += n + " " + num(s.value) + "\n";
        break;
      case MetricKind::kGauge:
      case MetricKind::kCallback:
        out += "# TYPE " + n + " gauge\n";
        out += n + " " + num(s.value) + "\n";
        break;
      case MetricKind::kHistogram:
        out += "# TYPE " + n + " summary\n";
        out += n + "{quantile=\"0.5\"} " + num(s.p50) + "\n";
        out += n + "{quantile=\"0.95\"} " + num(s.p95) + "\n";
        out += n + "{quantile=\"0.99\"} " + num(s.p99) + "\n";
        out += n + "{quantile=\"0.999\"} " + num(s.p999) + "\n";
        out += n + "_sum " + num(s.sum) + "\n";
        out += n + "_count " + num(static_cast<double>(s.count)) + "\n";
        out += n + "_min " + num(s.min) + "\n";
        out += n + "_max " + num(s.max) + "\n";
        break;
    }
  }
  return out;
}

}  // namespace obs
}  // namespace saufno
