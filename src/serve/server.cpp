#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"

namespace saufno {
namespace serve {

// ---------------------------------------------------------------------------
// TenantQuotas
// ---------------------------------------------------------------------------

TenantQuotas::TenantQuotas(const std::string& spec) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string rule = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (rule.empty()) continue;
    const std::size_t eq = rule.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= rule.size()) {
      throw std::invalid_argument("tenant quota rule '" + rule +
                                  "' is not name=limit");
    }
    const std::string name = rule.substr(0, eq);
    char* end = nullptr;
    const long lim = std::strtol(rule.c_str() + eq + 1, &end, 10);
    if (end == nullptr || *end != '\0' || lim < 0 || lim > 1 << 20) {
      throw std::invalid_argument("tenant quota limit in '" + rule +
                                  "' must be an integer in [0, 1048576]");
    }
    if (name == "*") {
      default_limit_ = static_cast<int>(lim);
    } else {
      limits_[name] = static_cast<int>(lim);
    }
  }
}

int TenantQuotas::limit_for(const std::string& tenant) const {
  auto it = limits_.find(tenant);
  return it != limits_.end() ? it->second : default_limit_;
}

bool TenantQuotas::try_admit(const std::string& tenant, int* inflight_out,
                             int* limit_out) {
  const int limit = limit_for(tenant);
  std::lock_guard<std::mutex> lk(m_);
  int& count = inflight_[tenant];
  if (limit_out != nullptr) *limit_out = limit;
  if (inflight_out != nullptr) *inflight_out = count;
  if (limit >= 0 && count >= limit) return false;
  ++count;
  return true;
}

void TenantQuotas::release(const std::string& tenant) {
  std::lock_guard<std::mutex> lk(m_);
  auto it = inflight_.find(tenant);
  if (it == inflight_.end()) return;
  if (--it->second <= 0) inflight_.erase(it);
}

int TenantQuotas::inflight(const std::string& tenant) const {
  std::lock_guard<std::mutex> lk(m_);
  auto it = inflight_.find(tenant);
  return it != inflight_.end() ? it->second : 0;
}

// ---------------------------------------------------------------------------
// Connection state
// ---------------------------------------------------------------------------

/// One accepted connection. The reader thread decodes frames and enqueues
/// Pending items; the completer thread resolves them FIFO and writes the
/// response frames. Only the completer ever writes to the socket.
struct Server::Conn {
  int fd = -1;
  std::thread reader;
  std::thread completer;
  std::atomic<bool> finished{false};  // both threads done; reapable

  std::mutex m;
  std::condition_variable cv;
  struct Pending {
    bool ready = false;  // `response` is final; no future to wait on
    Response response;
    std::future<Tensor> fut;       // when !ready
    std::uint64_t id = 0;          // request id for the future's response
    std::string tenant;            // quota slot to release ("" = none held)
  };
  std::deque<Pending> pending;
  bool reader_done = false;
  /// Live cancel tokens by request id, for kCancel frames.
  std::map<std::uint64_t, runtime::CancelToken> cancellable;
};

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

Server::Server(std::shared_ptr<Fleet> fleet, Config cfg)
    : fleet_(std::move(fleet)), cfg_(cfg), quotas_(cfg.quota_spec) {}

Server::~Server() { stop(); }

void Server::start() {
  if (started_.exchange(true)) {
    throw std::runtime_error("Server::start called twice");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bad bind address '" + cfg_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind(" + cfg_.bind_address + ":" +
                             std::to_string(cfg_.port) + ") failed: " + err);
  }
  if (::listen(listen_fd_, 128) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("listen() failed: " + err);
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = ntohs(bound.sin_port);
  SAUFNO_INFO << "serve: listening on " << cfg_.bind_address << ":" << port_
              << " (max_conns=" << cfg_.max_conns << ")";
  acceptor_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  for (;;) {
    if (stopped_.load()) break;
    if (drain_requested_.exchange(false)) drain(cfg_.drain_timeout);
    if (draining_.load()) break;  // drained: no more accepts
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 100);
    if (pr < 0 && errno != EINTR) break;
    if (pr <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      break;  // listen socket closed (stop/drain)
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    reap_conns(false);
    std::lock_guard<std::mutex> lk(conns_m_);
    if (static_cast<int>(conns_.size()) >= cfg_.max_conns) {
      // Full house: one typed connection-level rejection, then close. The
      // retry-after hint is a coarse "try again shortly" — connection slots
      // recycle on client cadence, which the server cannot estimate.
      conns_rejected_.fetch_add(1);
      static obs::Counter& c = obs::counter("serve.conns_rejected");
      c.add();
      Response r;
      r.id = 0;
      r.code = WireCode::kOverloaded;
      r.retry_after_ms = 10.0;
      r.message = "connection limit reached (" +
                  std::to_string(cfg_.max_conns) + " active)";
      write_frame(fd, encode_response(r));
      ::close(fd);
      continue;
    }
    conns_accepted_.fetch_add(1);
    static obs::Counter& c = obs::counter("serve.conns_accepted");
    c.add();
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    Conn* raw = conn.get();
    conn->reader = std::thread([this, raw] { reader_loop(raw); });
    conn->completer = std::thread([this, raw] { completer_loop(raw); });
    conns_.push_back(std::move(conn));
  }
}

void Server::reader_loop(Conn* conn) {
  std::vector<std::uint8_t> body;
  for (;;) {
    bool got = false;
    try {
      got = read_frame(conn->fd, body, cfg_.max_frame_bytes);
    } catch (const ProtocolError& e) {
      // Garbled stream: best-effort typed rejection, then hang up. The
      // response goes through the completer queue like everything else so
      // in-flight responses are not interleaved mid-frame.
      protocol_errors_.fetch_add(1);
      static obs::Counter& c = obs::counter("serve.protocol_errors");
      c.add();
      Conn::Pending p;
      p.ready = true;
      p.response.id = 0;
      p.response.code = WireCode::kProtocol;
      p.response.message = e.what();
      std::lock_guard<std::mutex> lk(conn->m);
      conn->pending.push_back(std::move(p));
      break;
    }
    if (!got) break;  // clean close
    AnyFrame frame;
    try {
      frame = decode_frame(body.data(), body.size());
    } catch (const ProtocolError& e) {
      protocol_errors_.fetch_add(1);
      static obs::Counter& c = obs::counter("serve.protocol_errors");
      c.add();
      Conn::Pending p;
      p.ready = true;
      p.response.id = 0;
      p.response.code = WireCode::kProtocol;
      p.response.message = e.what();
      std::lock_guard<std::mutex> lk(conn->m);
      conn->pending.push_back(std::move(p));
      break;
    }
    // Flow control: cap queued-but-unanswered work per connection. The
    // reader simply stops reading; TCP backpressure does the rest.
    {
      std::unique_lock<std::mutex> lk(conn->m);
      conn->cv.wait(lk, [&] {
        return conn->pending.size() < cfg_.max_pipelined || stopped_.load();
      });
      if (stopped_.load()) break;
    }
    if (!handle_frame(conn, std::move(frame))) break;
  }
  {
    std::lock_guard<std::mutex> lk(conn->m);
    conn->reader_done = true;
  }
  conn->cv.notify_all();
}

bool Server::handle_frame(Conn* conn, AnyFrame frame) {
  switch (frame.kind) {
    case FrameKind::kInfer:
      requests_.fetch_add(1);
      {
        static obs::Counter& c = obs::counter("serve.requests");
        c.add();
      }
      handle_infer(conn, std::move(frame.infer));
      return true;
    case FrameKind::kCancel: {
      cancels_.fetch_add(1);
      std::lock_guard<std::mutex> lk(conn->m);
      auto it = conn->cancellable.find(frame.id);
      if (it != conn->cancellable.end()) it->second.request_cancel();
      // A cancel frame carries no response of its own: the cancelled
      // request's own response reports kCancelled (or whatever beat it).
      return true;
    }
    case FrameKind::kPing: {
      Conn::Pending p;
      p.ready = true;
      p.response.id = frame.id;
      p.response.code = WireCode::kOk;
      p.response.message = draining_.load() ? "draining" : "serving";
      std::lock_guard<std::mutex> lk(conn->m);
      conn->pending.push_back(std::move(p));
      conn->cv.notify_all();
      return true;
    }
    case FrameKind::kLoadModel:
    case FrameKind::kEvictModel: {
      Conn::Pending p;
      p.ready = true;
      p.response.id = frame.id;
      try {
        if (draining_.load()) {
          throw runtime::ShutdownError("server is draining");
        }
        if (frame.kind == FrameKind::kLoadModel) {
          fleet_->register_checkpoint(frame.name, frame.path);
          if (fleet_->is_loaded(frame.name)) {
            fleet_->reload(frame.name);
          } else {
            fleet_->acquire(frame.name);  // load now; surfacing load errors
          }
          p.response.message = "loaded " + frame.name;
        } else {
          const bool was = fleet_->evict(frame.name);
          p.response.message =
              was ? "evicted " + frame.name : frame.name + " was not resident";
        }
        p.response.code = WireCode::kOk;
      } catch (...) {
        double retry = 0.0;
        p.response.code = code_for_exception(std::current_exception(), &retry,
                                             &p.response.message);
        p.response.retry_after_ms = retry;
      }
      std::lock_guard<std::mutex> lk(conn->m);
      conn->pending.push_back(std::move(p));
      conn->cv.notify_all();
      return true;
    }
    case FrameKind::kResponse: {
      // Clients must not send response frames: protocol error, close after.
      protocol_errors_.fetch_add(1);
      Conn::Pending p;
      p.ready = true;
      p.response.id = frame.response.id;
      p.response.code = WireCode::kProtocol;
      p.response.message = "unexpected response frame from client";
      std::lock_guard<std::mutex> lk(conn->m);
      conn->pending.push_back(std::move(p));
      conn->cv.notify_all();
      return false;
    }
  }
  return true;
}

void Server::handle_infer(Conn* conn, InferRequest req) {
  Conn::Pending p;
  p.id = req.id;
  const std::string tenant = req.tenant.empty() ? "default" : req.tenant;
  bool quota_held = false;
  try {
    if (draining_.load() || stopped_.load()) {
      throw runtime::ShutdownError("server is draining; request " +
                                   std::to_string(req.id) + " refused");
    }
    const std::string model_name =
        req.model.empty() ? cfg_.default_model : req.model;
    auto engine = fleet_->acquire(model_name);

    int inflight = 0, limit = 0;
    if (!quotas_.try_admit(tenant, &inflight, &limit)) {
      quota_rejected_.fetch_add(1);
      static obs::Counter& c = obs::counter("serve.quota_rejected");
      c.add();
      // Same contract as engine admission control: OverloadedError with a
      // retry-after hint (how soon the engine expects to clear backlog — a
      // tenant at quota is usually waiting on its own queued work).
      throw runtime::OverloadedError(
          "tenant '" + tenant + "' at quota (" + std::to_string(inflight) +
              "/" + std::to_string(limit) + " in flight)",
          std::max(engine->estimated_retry_after_ms(), 1.0));
    }
    quota_held = true;

    runtime::SubmitOptions opts;
    if (req.deadline_ms > 0) {
      opts.deadline = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(req.deadline_ms);
    }
    opts.cancel = runtime::CancelToken::make();
    p.fut = engine->submit(std::move(req.input), opts);
    p.tenant = tenant;
    std::lock_guard<std::mutex> lk(conn->m);
    conn->cancellable.emplace(req.id, opts.cancel);
    conn->pending.push_back(std::move(p));
    conn->cv.notify_all();
    return;
  } catch (...) {
    if (quota_held) quotas_.release(tenant);
    p.ready = true;
    p.response.id = req.id;
    double retry = 0.0;
    p.response.code = code_for_exception(std::current_exception(), &retry,
                                         &p.response.message);
    p.response.retry_after_ms = retry;
  }
  std::lock_guard<std::mutex> lk(conn->m);
  conn->pending.push_back(std::move(p));
  conn->cv.notify_all();
}

void Server::completer_loop(Conn* conn) {
  for (;;) {
    Conn::Pending item;
    {
      std::unique_lock<std::mutex> lk(conn->m);
      conn->cv.wait(lk, [&] {
        return !conn->pending.empty() || conn->reader_done;
      });
      if (conn->pending.empty()) break;  // reader done + queue flushed
      item = std::move(conn->pending.front());
      conn->pending.pop_front();
    }
    conn->cv.notify_all();  // wake a flow-controlled reader

    Response r;
    if (item.ready) {
      r = std::move(item.response);
    } else {
      r.id = item.id;
      try {
        // Engine futures always resolve (watchdog + drain guarantee), so
        // this get() cannot hang past the engine's own timeouts.
        r.tensor = item.fut.get();
        r.has_tensor = true;
        r.code = WireCode::kOk;
      } catch (...) {
        double retry = 0.0;
        r.code =
            code_for_exception(std::current_exception(), &retry, &r.message);
        r.retry_after_ms = retry;
      }
      if (!item.tenant.empty()) quotas_.release(item.tenant);
      std::lock_guard<std::mutex> lk(conn->m);
      conn->cancellable.erase(r.id);
    }
    const bool wrote = write_frame(conn->fd, encode_response(r));
    responses_.fetch_add(1);
    static obs::Counter& c = obs::counter("serve.responses");
    c.add();
    if (!wrote) {
      // Peer is gone: keep DRAINING the queue (futures must be consumed
      // and quota slots released) but stop writing.
      std::lock_guard<std::mutex> lk(conn->m);
      if (conn->reader_done && conn->pending.empty()) break;
    }
  }
  // Half-close the write side so a still-reading peer sees EOF. The reader
  // always finishes before this point (the loop above only exits once
  // reader_done), so both threads are now reapable.
  ::shutdown(conn->fd, SHUT_WR);
  conn->finished.store(true);
}

void Server::drain(std::chrono::milliseconds timeout) {
  std::lock_guard<std::mutex> lk(drain_m_);
  if (drained_.load()) return;
  draining_.store(true);
  SAUFNO_INFO << "serve: draining (timeout " << timeout.count() << " ms)";
  // Stop accepting: closing the listen socket kicks the acceptor's poll.
  // (When drain() runs ON the acceptor via request_drain, the loop exits on
  // the draining_ flag right after.)
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  // Resolve everything in flight: every engine future completes (value or
  // ShutdownError), which flushes every completer.
  fleet_->drain_all(timeout);
  drained_.store(true);
  SAUFNO_INFO << "serve: drained";
}

void Server::stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  drain(cfg_.drain_timeout);
  // Unblock flow-controlled readers and kick every connection.
  {
    std::lock_guard<std::mutex> lk(conns_m_);
    for (auto& c : conns_) {
      ::shutdown(c->fd, SHUT_RDWR);
      c->cv.notify_all();
    }
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  reap_conns(true);
}

void Server::reap_conns(bool all) {
  std::vector<std::unique_ptr<Conn>> dead;
  {
    std::lock_guard<std::mutex> lk(conns_m_);
    auto it = conns_.begin();
    while (it != conns_.end()) {
      if (all || (*it)->finished.load()) {
        dead.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& c : dead) {
    if (c->reader.joinable()) c->reader.join();
    if (c->completer.joinable()) c->completer.join();
    if (c->fd >= 0) {
      ::close(c->fd);
      c->fd = -1;
    }
  }
}

Server::Stats Server::stats() const {
  Stats s;
  s.conns_accepted = conns_accepted_.load();
  s.conns_rejected = conns_rejected_.load();
  {
    std::lock_guard<std::mutex> lk(conns_m_);
    s.conns_active = static_cast<int64_t>(conns_.size());
  }
  s.requests = requests_.load();
  s.responses = responses_.load();
  s.protocol_errors = protocol_errors_.load();
  s.quota_rejected = quota_rejected_.load();
  s.cancels = cancels_.load();
  return s;
}

}  // namespace serve
}  // namespace saufno
