#include "serve/fleet.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"

namespace saufno {
namespace serve {

Fleet::Fleet(Config cfg) : cfg_(cfg) {}

Fleet::~Fleet() {
  // Engines drain in their own destructors too; an explicit pass keeps the
  // shutdown order deterministic (stop admissions before teardown).
  drain_all(cfg_.evict_drain_timeout);
}

void Fleet::register_checkpoint(const std::string& name,
                                const std::string& path) {
  std::lock_guard<std::mutex> lk(m_);
  Entry& e = entries_[name];  // creates or updates
  e.path = path;
}

void Fleet::add_engine(const std::string& name,
                       std::shared_ptr<runtime::InferenceEngine> engine) {
  std::lock_guard<std::mutex> lk(m_);
  Entry& e = entries_[name];
  e.engine = std::move(engine);
  e.pinned = true;
  e.last_used = ++use_clock_;
}

std::shared_ptr<runtime::InferenceEngine> Fleet::acquire(
    const std::string& name) {
  std::unique_lock<std::mutex> lk(m_);
  for (;;) {
    if (draining_) {
      throw runtime::ShutdownError("fleet is draining; model '" + name +
                                   "' no longer serves");
    }
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      throw runtime::RequestError("unknown model '" + name +
                                  "' (not registered with the fleet)");
    }
    Entry& e = it->second;
    if (e.engine != nullptr) {
      e.last_used = ++use_clock_;
      return e.engine;
    }
    if (e.path.empty()) {
      throw runtime::RequestError("model '" + name +
                                  "' was evicted and has no checkpoint to "
                                  "reload from");
    }
    if (e.loading) {
      // Another thread is loading this model; wait for its publish.
      load_cv_.wait(lk);
      continue;  // re-validate everything (drain/evict may have raced)
    }
    e.loading = true;
    const std::string path = e.path;
    lk.unlock();

    std::shared_ptr<runtime::InferenceEngine> fresh;
    std::exception_ptr load_error;
    try {
      fresh = runtime::InferenceEngine::from_checkpoint(path, cfg_.engine);
    } catch (...) {
      load_error = std::current_exception();
    }

    lk.lock();
    auto it2 = entries_.find(name);
    if (it2 != entries_.end()) it2->second.loading = false;
    load_cv_.notify_all();
    if (load_error != nullptr) {
      // Surface as a request fault: THIS request named a model whose
      // checkpoint cannot be served; the fleet itself is healthy.
      std::string what = "unknown error";
      try {
        std::rethrow_exception(load_error);
      } catch (const std::exception& ex) {
        what = ex.what();
      } catch (...) {
      }
      throw runtime::RequestError("model '" + name + "' failed to load from " +
                                  path + ": " + what);
    }
    if (it2 == entries_.end()) {
      throw runtime::RequestError("model '" + name +
                                  "' was unregistered during load");
    }
    if (it2->second.engine == nullptr) {
      it2->second.engine = fresh;
      ++loads_;
      static obs::Counter& c = obs::counter("fleet.loads");
      c.add();
    }
    it2->second.last_used = ++use_clock_;
    auto handle = it2->second.engine;
    auto dropped = evict_over_cap();
    lk.unlock();
    for (auto& d : dropped) drain_engine(d);
    return handle;
  }
}

std::vector<std::shared_ptr<runtime::InferenceEngine>> Fleet::evict_over_cap() {
  std::vector<std::shared_ptr<runtime::InferenceEngine>> dropped;
  if (cfg_.max_loaded == 0) return dropped;
  for (;;) {
    std::size_t resident = 0;
    std::map<std::string, Entry>::iterator lru = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.engine == nullptr) continue;
      ++resident;
      if (it->second.pinned) continue;
      if (lru == entries_.end() ||
          it->second.last_used < lru->second.last_used) {
        lru = it;
      }
    }
    if (resident <= cfg_.max_loaded || lru == entries_.end()) return dropped;
    SAUFNO_INFO << "fleet: evicting LRU model '" << lru->first << "' ("
                << resident << " resident > cap " << cfg_.max_loaded << ")";
    dropped.push_back(std::move(lru->second.engine));
    lru->second.engine = nullptr;
    ++evictions_;
    static obs::Counter& c = obs::counter("fleet.evictions");
    c.add();
  }
}

void Fleet::drain_engine(
    const std::shared_ptr<runtime::InferenceEngine>& e) {
  if (e == nullptr) return;
  try {
    e->drain(cfg_.evict_drain_timeout);
  } catch (const std::exception& ex) {
    SAUFNO_WARN << "fleet: drain on evicted engine failed: " << ex.what();
  }
}

bool Fleet::evict(const std::string& name) {
  std::shared_ptr<runtime::InferenceEngine> victim;
  {
    std::lock_guard<std::mutex> lk(m_);
    auto it = entries_.find(name);
    if (it == entries_.end() || it->second.engine == nullptr) return false;
    victim = std::move(it->second.engine);
    it->second.engine = nullptr;
    ++evictions_;
  }
  static obs::Counter& c = obs::counter("fleet.evictions");
  c.add();
  drain_engine(victim);
  return true;
}

void Fleet::reload(const std::string& name) {
  std::string path;
  {
    std::lock_guard<std::mutex> lk(m_);
    auto it = entries_.find(name);
    if (it == entries_.end() || it->second.path.empty()) {
      throw runtime::RequestError("model '" + name +
                                  "' has no registered checkpoint to reload");
    }
    path = it->second.path;
  }
  // Build the replacement before touching the live one: a failed load
  // leaves the old engine serving.
  auto fresh = runtime::InferenceEngine::from_checkpoint(path, cfg_.engine);
  std::shared_ptr<runtime::InferenceEngine> old;
  {
    std::lock_guard<std::mutex> lk(m_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      throw runtime::RequestError("model '" + name +
                                  "' was unregistered during reload");
    }
    old = std::move(it->second.engine);
    it->second.engine = std::move(fresh);
    it->second.last_used = ++use_clock_;
    ++loads_;
  }
  drain_engine(old);
}

std::size_t Fleet::drain_all(std::chrono::milliseconds timeout) {
  std::vector<std::shared_ptr<runtime::InferenceEngine>> resident;
  {
    std::lock_guard<std::mutex> lk(m_);
    draining_ = true;
    for (auto& kv : entries_) {
      if (kv.second.engine != nullptr) resident.push_back(kv.second.engine);
    }
  }
  load_cv_.notify_all();
  std::size_t failed = 0;
  for (auto& e : resident) {
    try {
      failed += e->drain(timeout);
    } catch (const std::exception& ex) {
      SAUFNO_WARN << "fleet: drain failed: " << ex.what();
    }
  }
  return failed;
}

bool Fleet::is_registered(const std::string& name) const {
  std::lock_guard<std::mutex> lk(m_);
  return entries_.count(name) != 0;
}

bool Fleet::is_loaded(const std::string& name) const {
  std::lock_guard<std::mutex> lk(m_);
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.engine != nullptr;
}

std::vector<std::string> Fleet::loaded_names() const {
  std::lock_guard<std::mutex> lk(m_);
  std::vector<std::string> names;
  for (const auto& kv : entries_) {
    if (kv.second.engine != nullptr) names.push_back(kv.first);
  }
  return names;
}

std::size_t Fleet::loaded_count() const {
  std::lock_guard<std::mutex> lk(m_);
  std::size_t n = 0;
  for (const auto& kv : entries_) n += kv.second.engine != nullptr ? 1 : 0;
  return n;
}

}  // namespace serve
}  // namespace saufno
