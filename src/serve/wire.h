#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/errors.h"
#include "tensor/tensor.h"

namespace saufno {
namespace serve {

/// Length-prefixed binary framing for the network serving frontend.
///
/// Every frame is an 8-byte header followed by `body_len` body bytes:
///
///   u32  magic     "SFW1" (0x31574653 little-endian)
///   u32  body_len  bytes that follow (bounded by the peer's max_frame)
///
/// All multi-byte integers and the f32 payload are LITTLE-ENDIAN, matching
/// the checkpoint format (this reproduction targets x86-64; a big-endian
/// port would byte-swap in read_/write_ helpers below, nowhere else).
///
/// Body layouts by leading `u8 kind`:
///
///   kInfer      u64 id, str tenant, str model, u8 priority,
///               u32 deadline_ms (0 = none, relative to server receipt),
///               u8 rank, i64 dims[rank], f32 data[numel]
///   kCancel     u64 id of the in-flight request to cancel
///   kPing       u64 id (echoed in a kOk response; also reports drain state)
///   kLoadModel  u64 id, str name, str checkpoint_path (hot-load/reload)
///   kEvictModel u64 id, str name (drain + unload; stays registered)
///   kResponse   u64 id, u8 code, f64 retry_after_ms, str message,
///               u8 has_tensor, [u8 rank, i64 dims[rank], f32 data[numel]]
///
/// `str` is u16 length + raw bytes (no terminator), capped at kMaxString.
///
/// The response `code` mirrors the typed error taxonomy of
/// src/runtime/errors.h one-for-one, so an error observed through a socket
/// reconstructs to the SAME exception type an in-process submit() would
/// have thrown (throw_wire_error is that mapping; tests/test_serve.cpp
/// proves the round trip differentially against in-process submits).
constexpr std::uint32_t kWireMagic = 0x31574653u;  // "SFW1" on the wire
constexpr std::size_t kFrameHeaderBytes = 8;
/// Default per-frame cap. A 64 MB body admits a [16, 1024, 1024] f32 map
/// with headroom; anything larger is a protocol error, not an allocation.
constexpr std::size_t kDefaultMaxFrameBytes = std::size_t{64} << 20;
constexpr std::size_t kMaxString = 4096;
constexpr int kMaxRank = 8;
constexpr std::int64_t kMaxDim = 1 << 20;

enum class FrameKind : std::uint8_t {
  kInfer = 0,
  kCancel = 1,
  kPing = 2,
  kLoadModel = 3,
  kEvictModel = 4,
  kResponse = 5,
};

/// Response status codes. 1..5 map one-for-one onto the typed errors in
/// runtime/errors.h; 6 is the EngineError base (a typed failure that is
/// none of the five leaves), 7/8 are wire-layer conditions with no
/// in-process equivalent (a malformed frame, an unexpected server-side
/// exception).
enum class WireCode : std::uint8_t {
  kOk = 0,
  kOverloaded = 1,        // runtime::OverloadedError (+ retry_after_ms)
  kDeadlineExceeded = 2,  // runtime::DeadlineExceededError
  kCancelled = 3,         // runtime::CancelledError
  kShutdown = 4,          // runtime::ShutdownError
  kRequest = 5,           // runtime::RequestError
  kEngine = 6,            // runtime::EngineError (base / unclassified)
  kProtocol = 7,          // malformed frame; the connection is closed after
  kInternal = 8,          // non-EngineError server exception
};

const char* wire_code_name(WireCode c);

/// Malformed frame / stream: bad magic, oversized body, truncated field,
/// out-of-range rank/dim, trailing garbage. The server answers with a
/// kProtocol response (when it still can) and closes the connection — the
/// framing state is unrecoverable.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& msg) : std::runtime_error(msg) {}
};

/// Orderly close (EOF at a frame boundary) observed where a frame was
/// required — distinct from ProtocolError so chaos tests can tell "clean
/// close" from "garbled stream".
class ConnectionClosedError : public ProtocolError {
 public:
  explicit ConnectionClosedError(const std::string& msg)
      : ProtocolError(msg) {}
};

struct InferRequest {
  std::uint64_t id = 0;
  std::string tenant;
  std::string model;  // "" = the server's default model
  std::uint8_t priority = 0;
  std::uint32_t deadline_ms = 0;  // 0 = no deadline
  Tensor input;                   // [C, H, W] raw power map
};

struct Response {
  std::uint64_t id = 0;
  WireCode code = WireCode::kOk;
  double retry_after_ms = 0.0;  // meaningful for kOverloaded
  std::string message;
  bool has_tensor = false;
  Tensor tensor;
  bool ok() const { return code == WireCode::kOk; }
};

/// A decoded frame: `kind` selects which of the members is meaningful.
struct AnyFrame {
  FrameKind kind = FrameKind::kPing;
  InferRequest infer;          // kInfer
  Response response;           // kResponse
  std::uint64_t id = 0;        // kCancel / kPing / kLoadModel / kEvictModel
  std::string name;            // kLoadModel / kEvictModel
  std::string path;            // kLoadModel
};

// --- encoding (always a complete frame: header + body) ----------------------
std::vector<std::uint8_t> encode_infer(const InferRequest& req);
std::vector<std::uint8_t> encode_cancel(std::uint64_t id);
std::vector<std::uint8_t> encode_ping(std::uint64_t id);
std::vector<std::uint8_t> encode_load_model(std::uint64_t id,
                                            const std::string& name,
                                            const std::string& path);
std::vector<std::uint8_t> encode_evict_model(std::uint64_t id,
                                             const std::string& name);
std::vector<std::uint8_t> encode_response(const Response& r);

/// Decode one frame BODY (the bytes after a validated header). Throws
/// ProtocolError on any malformation; never reads past `len`.
AnyFrame decode_frame(const std::uint8_t* body, std::size_t len);

/// Validate a frame header. Returns the body length; throws ProtocolError
/// on bad magic or a body over `max_frame_bytes` (checked BEFORE any
/// allocation, so an adversarial length cannot OOM the server).
std::size_t decode_header(const std::uint8_t header[kFrameHeaderBytes],
                          std::size_t max_frame_bytes);

// --- blocking socket IO -----------------------------------------------------
/// Read exactly one frame body into `body`. Returns false on a clean EOF at
/// a frame boundary (peer closed between frames); throws ProtocolError on a
/// bad header or mid-frame EOF.
bool read_frame(int fd, std::vector<std::uint8_t>& body,
                std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

/// Write all of `data` (handles short writes; MSG_NOSIGNAL so a dead peer
/// yields false, never SIGPIPE). Returns false on any write error.
bool write_frame(int fd, const std::vector<std::uint8_t>& data);

// --- error taxonomy mapping -------------------------------------------------
/// Classify a caught exception into a wire code (+ retry-after for
/// OverloadedError). Call inside a catch block with std::current_exception().
WireCode code_for_exception(std::exception_ptr e, double* retry_after_ms,
                            std::string* message);

/// The inverse mapping: rebuild and throw the typed runtime error a
/// response carries (no-op for kOk). This is what makes a remote client
/// observe the SAME exception types as an in-process one.
void throw_wire_error(const Response& r);

}  // namespace serve
}  // namespace saufno
