#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace saufno {
namespace serve {

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), next_id_(other.next_id_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    next_id_ = other.next_id_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::connect(const std::string& host, std::uint16_t port) {
  close();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("client: socket() failed: ") +
                             std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("client: bad address '" + host + "'");
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    int err = errno;
    ::close(fd);
    throw std::runtime_error("client: connect to " + host + ":" +
                             std::to_string(port) +
                             " failed: " + std::strerror(err));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::send_bytes(const std::vector<std::uint8_t>& frame) {
  if (fd_ < 0) throw std::runtime_error("client: not connected");
  if (!write_frame(fd_, frame)) {
    throw ConnectionClosedError("client: peer closed while sending");
  }
}

std::uint64_t Client::send_infer(Tensor power_map, const std::string& model,
                                 const std::string& tenant,
                                 std::uint32_t deadline_ms,
                                 std::uint8_t priority) {
  InferRequest req;
  req.id = next_id_++;
  req.tenant = tenant;
  req.model = model;
  req.priority = priority;
  req.deadline_ms = deadline_ms;
  req.input = std::move(power_map);
  const std::uint64_t id = req.id;
  send_bytes(encode_infer(req));
  return id;
}

void Client::send_cancel(std::uint64_t id) { send_bytes(encode_cancel(id)); }

std::uint64_t Client::send_ping() {
  const std::uint64_t id = next_id_++;
  send_bytes(encode_ping(id));
  return id;
}

Response Client::recv_response() {
  if (fd_ < 0) throw std::runtime_error("client: not connected");
  std::vector<std::uint8_t> body;
  if (!read_frame(fd_, body, kDefaultMaxFrameBytes)) {
    throw ConnectionClosedError("client: server closed the connection");
  }
  AnyFrame frame = decode_frame(body.data(), body.size());
  if (frame.kind != FrameKind::kResponse) {
    throw ProtocolError("client: expected a response frame, got kind " +
                        std::to_string(static_cast<int>(frame.kind)));
  }
  return std::move(frame.response);
}

Tensor Client::infer(Tensor power_map, const std::string& model,
                     const std::string& tenant, std::uint32_t deadline_ms,
                     std::uint8_t priority) {
  send_infer(std::move(power_map), model, tenant, deadline_ms, priority);
  Response r = recv_response();
  throw_wire_error(r);  // no-op on kOk
  if (!r.has_tensor) {
    throw ProtocolError("client: ok response without a tensor payload");
  }
  return std::move(r.tensor);
}

std::string Client::ping() {
  send_ping();
  Response r = recv_response();
  throw_wire_error(r);
  return r.message;
}

void Client::load_model(const std::string& name,
                        const std::string& checkpoint_path) {
  send_bytes(encode_load_model(next_id_++, name, checkpoint_path));
  Response r = recv_response();
  throw_wire_error(r);
}

void Client::evict_model(const std::string& name) {
  send_bytes(encode_evict_model(next_id_++, name));
  Response r = recv_response();
  throw_wire_error(r);
}

}  // namespace serve
}  // namespace saufno
