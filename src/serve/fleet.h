#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/inference_engine.h"

namespace saufno {
namespace serve {

/// Multi-model fleet manager: the name -> InferenceEngine map behind the
/// socket server. Models are REGISTERED (a name bound to a v2/v3 checkpoint
/// path) and hot-LOADED on first use; beyond `max_loaded` engines the
/// least-recently-acquired unpinned one is drained and evicted, so a server
/// can advertise a large catalog while bounding resident weights.
///
/// - `acquire` returns shared ownership: an eviction never pulls the rug
///   from under an in-flight request — the evicted engine is drained (its
///   queued work resolves, stragglers get ShutdownError) and destroyed when
///   the last holder releases it.
/// - `add_engine` installs a pre-built engine under a name with no backing
///   checkpoint. Such entries are PINNED: never auto-evicted (there is no
///   file to reload them from). Tests and benches use this to serve
///   in-memory models without touching disk.
/// - `reload` hot-swaps: builds a fresh engine from the registered path,
///   publishes it, then drains the old one — requests keep flowing during
///   the swap (they land on whichever engine the map held at acquire time).
/// - Unknown names throw runtime::RequestError (the request is at fault),
///   which the wire layer maps to WireCode::kRequest.
///
/// Thread-safe. Checkpoint loads run OUTSIDE the map lock; concurrent first
/// acquires of the same model wait on the loader instead of loading twice.
class Fleet {
 public:
  struct Config {
    /// Resident-engine cap (pinned entries count toward it but are never
    /// auto-evicted). 0 = unlimited.
    std::size_t max_loaded = 4;
    /// Engine template applied to every hot-load.
    runtime::InferenceEngine::Config engine;
    /// Drain budget when evicting/reloading/draining an engine.
    std::chrono::milliseconds evict_drain_timeout{2000};
  };

  explicit Fleet(Config cfg);
  /// Drains and destroys every loaded engine.
  ~Fleet();
  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  /// Bind `name` to a checkpoint path (no load yet). Re-registering an
  /// unloaded name updates the path; a loaded one keeps serving the old
  /// weights until reload()/evict().
  void register_checkpoint(const std::string& name, const std::string& path);

  /// Install a pre-built engine under `name` (pinned; see class comment).
  void add_engine(const std::string& name,
                  std::shared_ptr<runtime::InferenceEngine> engine);

  /// Shared handle to the named engine, hot-loading it if registered but
  /// not resident. Throws runtime::RequestError for unknown names and
  /// runtime::ShutdownError once the fleet is draining.
  std::shared_ptr<runtime::InferenceEngine> acquire(const std::string& name);

  /// Drain + unload the named engine (it stays registered; the next acquire
  /// reloads from the path). Returns false if it was not resident. Pinned
  /// entries CAN be evicted explicitly — they just can't come back.
  bool evict(const std::string& name);

  /// Hot-swap: build a fresh engine from the registered path, publish it,
  /// drain the old one. Throws RequestError if `name` has no checkpoint.
  void reload(const std::string& name);

  /// Stop admissions fleet-wide and drain every resident engine. After this
  /// acquire() throws ShutdownError. Returns requests failed by the drains.
  std::size_t drain_all(std::chrono::milliseconds timeout);

  bool is_registered(const std::string& name) const;
  bool is_loaded(const std::string& name) const;
  std::vector<std::string> loaded_names() const;
  std::size_t loaded_count() const;
  int64_t loads() const { return loads_; }
  int64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    std::string path;  // "" for add_engine entries
    std::shared_ptr<runtime::InferenceEngine> engine;
    bool pinned = false;
    bool loading = false;
    std::uint64_t last_used = 0;
  };

  /// Pre: lock held. Drop LRU unpinned engines until under max_loaded;
  /// returns the dropped engines for the caller to drain OUTSIDE the lock.
  std::vector<std::shared_ptr<runtime::InferenceEngine>> evict_over_cap();
  void drain_engine(const std::shared_ptr<runtime::InferenceEngine>& e);

  Config cfg_;
  mutable std::mutex m_;
  std::condition_variable load_cv_;
  std::map<std::string, Entry> entries_;
  std::uint64_t use_clock_ = 0;
  bool draining_ = false;
  std::atomic<int64_t> loads_{0};     // atomics: the accessors read unlocked
  std::atomic<int64_t> evictions_{0};
};

}  // namespace serve
}  // namespace saufno
