#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/errors.h"
#include "serve/fleet.h"
#include "serve/wire.h"

namespace saufno {
namespace serve {

/// Per-tenant admission quotas: a cap on IN-FLIGHT requests (admitted but
/// not yet answered) per tenant id. Spec grammar, via SAUFNO_TENANT_QUOTA
/// or Config::quota_spec:
///
///   "alice=8,bench=256,*=64"
///
/// `*` is the default for tenants not named; with no `*` rule unnamed
/// tenants are unlimited. An over-quota request is rejected with the SAME
/// OverloadedError + retry-after contract as engine admission control —
/// remote clients cannot tell (and should not care) which layer shed them.
class TenantQuotas {
 public:
  /// Throws std::invalid_argument on a malformed spec. "" = unlimited.
  explicit TenantQuotas(const std::string& spec);

  /// Try to take one in-flight slot. Returns false when the tenant is at
  /// its cap (`limit_out`/`inflight_out` report the decision's numbers).
  bool try_admit(const std::string& tenant, int* inflight_out,
                 int* limit_out);
  void release(const std::string& tenant);
  int limit_for(const std::string& tenant) const;
  int inflight(const std::string& tenant) const;

 private:
  std::map<std::string, int> limits_;  // tenant -> cap
  int default_limit_ = -1;             // -1 = unlimited
  mutable std::mutex m_;
  std::map<std::string, int> inflight_;
};

/// TCP serving frontend: length-prefixed binary frames (serve/wire.h) over
/// a listening socket, feeding the shape-sharded RequestQueue of whichever
/// fleet engine each request names.
///
/// Connection model: one reader + one completer thread per connection
/// (bounded by `max_conns`; excess accepts get one kOverloaded response and
/// a close). The reader decodes frames, admits requests (tenant quota ->
/// fleet acquire -> engine submit) and queues the resulting futures; the
/// completer resolves them IN SUBMISSION ORDER and writes responses back —
/// so responses on one connection always arrive in request order, while
/// requests from many connections still coalesce into batches inside the
/// engines. A reader with `max_pipelined` answers outstanding stops reading
/// (TCP backpressure) instead of buffering without bound.
///
/// Error contract: every accepted frame gets exactly one response frame
/// whose code mirrors the typed error an in-process submit would have
/// thrown (see wire.h). A malformed frame gets a best-effort kProtocol
/// response and the connection is closed. A connection is never left
/// holding silently-dropped requests: server drain resolves them with
/// kShutdown, engine faults with their typed code.
///
/// Drain: `request_drain()` only sets an atomic flag (async-signal-safe —
/// wire it to SIGTERM) and the accept loop runs the actual drain: stop
/// accepting, reject new requests with kShutdown, drain every fleet engine
/// so in-flight futures resolve, flush completers. `stop()` tears down
/// sockets and joins every thread (the destructor calls it).
class Server {
 public:
  struct Config {
    std::string bind_address = "127.0.0.1";
    /// 0 = ephemeral (read the bound port back via port()).
    /// SAUFNO_PORT overrides when left at the default in serving_demo.
    std::uint16_t port = 0;
    /// Max concurrent connections (SAUFNO_MAX_CONNS). Each costs 2 threads.
    int max_conns = 64;
    /// Per-connection cap on queued-but-unanswered requests before the
    /// reader stops reading (flow control, not an error).
    std::size_t max_pipelined = 1024;
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Model served when a request's model field is "".
    std::string default_model;
    /// Tenant quota spec (see TenantQuotas). "" = unlimited.
    std::string quota_spec;
    /// Budget for the engine drains during server drain / teardown.
    std::chrono::milliseconds drain_timeout{5000};
  };

  struct Stats {
    int64_t conns_accepted = 0;
    int64_t conns_rejected = 0;   // over max_conns
    int64_t conns_active = 0;
    int64_t requests = 0;         // infer frames decoded
    int64_t responses = 0;        // response frames written
    int64_t protocol_errors = 0;  // malformed frames / streams
    int64_t quota_rejected = 0;   // over-quota kOverloaded responses
    int64_t cancels = 0;
  };

  Server(std::shared_ptr<Fleet> fleet, Config cfg);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + start the accept loop. Throws std::runtime_error on
  /// bind/listen failure (port in use, no such address).
  void start();

  /// The port actually bound (resolves ephemeral port 0).
  std::uint16_t port() const { return port_; }

  /// Async-signal-safe drain trigger: sets a flag the accept loop acts on.
  void request_drain() noexcept { drain_requested_.store(true); }

  /// Graceful drain (idempotent): stop accepting, reject new work with
  /// kShutdown, drain fleet engines so every in-flight future resolves.
  /// Existing connections stay open (clients see typed responses).
  void drain(std::chrono::milliseconds timeout);

  /// Hard stop: drain if not already drained, then shut every socket and
  /// join every thread. Idempotent; the destructor calls it.
  void stop();

  bool draining() const { return draining_.load(); }
  Stats stats() const;
  Fleet& fleet() { return *fleet_; }

 private:
  struct Conn;

  void accept_loop();
  void reader_loop(Conn* conn);
  void completer_loop(Conn* conn);
  /// Handle one decoded frame on `conn`, queuing at most one response.
  /// Returns false when the connection must close (protocol violation).
  bool handle_frame(Conn* conn, AnyFrame frame);
  void handle_infer(Conn* conn, InferRequest req);
  /// Join + destroy finished connections; with `all`, every connection.
  void reap_conns(bool all);

  std::shared_ptr<Fleet> fleet_;
  Config cfg_;
  TenantQuotas quotas_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> drained_{false};
  std::atomic<bool> drain_requested_{false};
  std::mutex drain_m_;  // serializes drain() bodies

  mutable std::mutex conns_m_;
  std::vector<std::unique_ptr<Conn>> conns_;

  std::atomic<int64_t> conns_accepted_{0};
  std::atomic<int64_t> conns_rejected_{0};
  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> responses_{0};
  std::atomic<int64_t> protocol_errors_{0};
  std::atomic<int64_t> quota_rejected_{0};
  std::atomic<int64_t> cancels_{0};
};

}  // namespace serve
}  // namespace saufno
