#include "serve/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace saufno {
namespace serve {

const char* wire_code_name(WireCode c) {
  switch (c) {
    case WireCode::kOk: return "ok";
    case WireCode::kOverloaded: return "overloaded";
    case WireCode::kDeadlineExceeded: return "deadline_exceeded";
    case WireCode::kCancelled: return "cancelled";
    case WireCode::kShutdown: return "shutdown";
    case WireCode::kRequest: return "request_error";
    case WireCode::kEngine: return "engine_error";
    case WireCode::kProtocol: return "protocol_error";
    case WireCode::kInternal: return "internal_error";
  }
  return "unknown";
}

namespace {

// --- little-endian append helpers ------------------------------------------
// memcpy of the native representation: this codebase targets little-endian
// x86-64 (same assumption as the checkpoint reader/writer). A big-endian
// port swaps here and in the Cursor readers — nowhere else.
template <typename T>
void put(std::vector<std::uint8_t>& out, T v) {
  static_assert(std::is_trivially_copyable<T>::value, "POD only");
  const std::size_t n = out.size();
  out.resize(n + sizeof(T));
  std::memcpy(out.data() + n, &v, sizeof(T));
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  if (s.size() > kMaxString) {
    throw ProtocolError("string field too long to encode (" +
                        std::to_string(s.size()) + " > " +
                        std::to_string(kMaxString) + ")");
  }
  put<std::uint16_t>(out, static_cast<std::uint16_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void put_tensor(std::vector<std::uint8_t>& out, const Tensor& t) {
  const Shape& shape = t.shape();
  if (shape.size() > static_cast<std::size_t>(kMaxRank)) {
    throw ProtocolError("tensor rank " + std::to_string(shape.size()) +
                        " exceeds wire maximum " + std::to_string(kMaxRank));
  }
  put<std::uint8_t>(out, static_cast<std::uint8_t>(shape.size()));
  for (int64_t d : shape) put<std::int64_t>(out, d);
  const std::size_t bytes = static_cast<std::size_t>(t.numel()) * sizeof(float);
  const std::size_t n = out.size();
  out.resize(n + bytes);
  if (bytes > 0) std::memcpy(out.data() + n, t.data(), bytes);
}

/// Bounds-checked sequential reader over a frame body. Every decode goes
/// through `need`, so a truncated or lying frame throws ProtocolError
/// instead of reading out of bounds — this is the surface the fuzz tests
/// hammer.
struct Cursor {
  const std::uint8_t* p;
  std::size_t left;

  void need(std::size_t n, const char* what) {
    if (left < n) {
      throw ProtocolError(std::string("truncated frame: need ") +
                          std::to_string(n) + " bytes for " + what +
                          ", have " + std::to_string(left));
    }
  }

  template <typename T>
  T take(const char* what) {
    need(sizeof(T), what);
    T v;
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    left -= sizeof(T);
    return v;
  }

  std::string take_str(const char* what) {
    const std::uint16_t n = take<std::uint16_t>(what);
    if (n > kMaxString) {
      throw ProtocolError(std::string(what) + " length " + std::to_string(n) +
                          " exceeds wire maximum");
    }
    need(n, what);
    std::string s(reinterpret_cast<const char*>(p), n);
    p += n;
    left -= n;
    return s;
  }

  Tensor take_tensor(const char* what) {
    const std::uint8_t rank = take<std::uint8_t>(what);
    if (rank > kMaxRank) {
      throw ProtocolError(std::string(what) + " rank " + std::to_string(rank) +
                          " exceeds wire maximum " + std::to_string(kMaxRank));
    }
    Shape shape;
    shape.reserve(rank);
    std::int64_t numel = 1;
    for (int i = 0; i < rank; ++i) {
      const std::int64_t d = take<std::int64_t>("tensor dim");
      if (d < 0 || d > kMaxDim) {
        throw ProtocolError(std::string(what) + " dim " + std::to_string(d) +
                            " out of range [0, " + std::to_string(kMaxDim) +
                            "]");
      }
      shape.push_back(d);
      numel *= d;
      // The per-dim cap bounds the product at (2^20)^8 which overflows, so
      // re-check against the frame budget as we go: a tensor can never hold
      // more elements than the remaining bytes admit.
      if (numel > static_cast<std::int64_t>(left / sizeof(float)) + 1) {
        throw ProtocolError(std::string(what) +
                            " claims more elements than the frame carries");
      }
    }
    const std::size_t bytes = static_cast<std::size_t>(numel) * sizeof(float);
    need(bytes, what);
    Tensor t{shape};
    if (bytes > 0) std::memcpy(t.data(), p, bytes);
    p += bytes;
    left -= bytes;
    return t;
  }

  void finish(const char* what) {
    if (left != 0) {
      throw ProtocolError(std::string(what) + ": " + std::to_string(left) +
                          " trailing bytes after the last field");
    }
  }
};

/// Stamp the header once the body size is known.
std::vector<std::uint8_t> seal(std::vector<std::uint8_t> body) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + body.size());
  put<std::uint32_t>(out, kWireMagic);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

}  // namespace

std::vector<std::uint8_t> encode_infer(const InferRequest& req) {
  std::vector<std::uint8_t> b;
  b.reserve(64 + static_cast<std::size_t>(req.input.numel()) * sizeof(float));
  put<std::uint8_t>(b, static_cast<std::uint8_t>(FrameKind::kInfer));
  put<std::uint64_t>(b, req.id);
  put_str(b, req.tenant);
  put_str(b, req.model);
  put<std::uint8_t>(b, req.priority);
  put<std::uint32_t>(b, req.deadline_ms);
  put_tensor(b, req.input);
  return seal(std::move(b));
}

std::vector<std::uint8_t> encode_cancel(std::uint64_t id) {
  std::vector<std::uint8_t> b;
  put<std::uint8_t>(b, static_cast<std::uint8_t>(FrameKind::kCancel));
  put<std::uint64_t>(b, id);
  return seal(std::move(b));
}

std::vector<std::uint8_t> encode_ping(std::uint64_t id) {
  std::vector<std::uint8_t> b;
  put<std::uint8_t>(b, static_cast<std::uint8_t>(FrameKind::kPing));
  put<std::uint64_t>(b, id);
  return seal(std::move(b));
}

std::vector<std::uint8_t> encode_load_model(std::uint64_t id,
                                            const std::string& name,
                                            const std::string& path) {
  std::vector<std::uint8_t> b;
  put<std::uint8_t>(b, static_cast<std::uint8_t>(FrameKind::kLoadModel));
  put<std::uint64_t>(b, id);
  put_str(b, name);
  put_str(b, path);
  return seal(std::move(b));
}

std::vector<std::uint8_t> encode_evict_model(std::uint64_t id,
                                             const std::string& name) {
  std::vector<std::uint8_t> b;
  put<std::uint8_t>(b, static_cast<std::uint8_t>(FrameKind::kEvictModel));
  put<std::uint64_t>(b, id);
  put_str(b, name);
  return seal(std::move(b));
}

std::vector<std::uint8_t> encode_response(const Response& r) {
  std::vector<std::uint8_t> b;
  b.reserve(64 + (r.has_tensor
                      ? static_cast<std::size_t>(r.tensor.numel()) * 4
                      : 0));
  put<std::uint8_t>(b, static_cast<std::uint8_t>(FrameKind::kResponse));
  put<std::uint64_t>(b, r.id);
  put<std::uint8_t>(b, static_cast<std::uint8_t>(r.code));
  put<double>(b, r.retry_after_ms);
  put_str(b, r.message);
  put<std::uint8_t>(b, r.has_tensor ? 1 : 0);
  if (r.has_tensor) put_tensor(b, r.tensor);
  return seal(std::move(b));
}

AnyFrame decode_frame(const std::uint8_t* body, std::size_t len) {
  Cursor c{body, len};
  AnyFrame f;
  const std::uint8_t kind = c.take<std::uint8_t>("frame kind");
  if (kind > static_cast<std::uint8_t>(FrameKind::kResponse)) {
    throw ProtocolError("unknown frame kind " + std::to_string(kind));
  }
  f.kind = static_cast<FrameKind>(kind);
  switch (f.kind) {
    case FrameKind::kInfer: {
      f.infer.id = c.take<std::uint64_t>("request id");
      f.infer.tenant = c.take_str("tenant");
      f.infer.model = c.take_str("model");
      f.infer.priority = c.take<std::uint8_t>("priority");
      f.infer.deadline_ms = c.take<std::uint32_t>("deadline_ms");
      f.infer.input = c.take_tensor("input tensor");
      c.finish("infer frame");
      break;
    }
    case FrameKind::kCancel:
    case FrameKind::kPing: {
      f.id = c.take<std::uint64_t>("request id");
      c.finish("cancel/ping frame");
      break;
    }
    case FrameKind::kLoadModel: {
      f.id = c.take<std::uint64_t>("request id");
      f.name = c.take_str("model name");
      f.path = c.take_str("checkpoint path");
      c.finish("load_model frame");
      break;
    }
    case FrameKind::kEvictModel: {
      f.id = c.take<std::uint64_t>("request id");
      f.name = c.take_str("model name");
      c.finish("evict_model frame");
      break;
    }
    case FrameKind::kResponse: {
      f.response.id = c.take<std::uint64_t>("response id");
      const std::uint8_t code = c.take<std::uint8_t>("status code");
      if (code > static_cast<std::uint8_t>(WireCode::kInternal)) {
        throw ProtocolError("unknown status code " + std::to_string(code));
      }
      f.response.code = static_cast<WireCode>(code);
      f.response.retry_after_ms = c.take<double>("retry_after_ms");
      f.response.message = c.take_str("message");
      f.response.has_tensor = c.take<std::uint8_t>("has_tensor flag") != 0;
      if (f.response.has_tensor) {
        f.response.tensor = c.take_tensor("response tensor");
      }
      c.finish("response frame");
      break;
    }
  }
  return f;
}

std::size_t decode_header(const std::uint8_t header[kFrameHeaderBytes],
                          std::size_t max_frame_bytes) {
  std::uint32_t magic = 0, body_len = 0;
  std::memcpy(&magic, header, 4);
  std::memcpy(&body_len, header + 4, 4);
  if (magic != kWireMagic) {
    throw ProtocolError("bad frame magic 0x" + [](std::uint32_t m) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%08x", m);
      return std::string(buf);
    }(magic));
  }
  if (body_len > max_frame_bytes) {
    throw ProtocolError("frame body " + std::to_string(body_len) +
                        " bytes exceeds limit " +
                        std::to_string(max_frame_bytes));
  }
  return body_len;
}

namespace {

/// Read exactly n bytes. Returns bytes read (== n on success); 0 means EOF
/// before the first byte; anything in between is a mid-stream EOF the
/// caller turns into a ProtocolError. EINTR is retried.
std::size_t read_exact(int fd, std::uint8_t* dst, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, dst + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) return got;  // EOF
    if (errno == EINTR) continue;
    return got;  // hard error: surface as truncated
  }
  return got;
}

}  // namespace

bool read_frame(int fd, std::vector<std::uint8_t>& body,
                std::size_t max_frame_bytes) {
  std::uint8_t header[kFrameHeaderBytes];
  const std::size_t h = read_exact(fd, header, kFrameHeaderBytes);
  if (h == 0) return false;  // clean close at a frame boundary
  if (h < kFrameHeaderBytes) {
    throw ProtocolError("connection closed mid-header (" + std::to_string(h) +
                        "/8 bytes)");
  }
  const std::size_t body_len = decode_header(header, max_frame_bytes);
  body.resize(body_len);
  if (body_len > 0 && read_exact(fd, body.data(), body_len) < body_len) {
    throw ProtocolError("connection closed mid-frame (wanted " +
                        std::to_string(body_len) + " body bytes)");
  }
  return true;
}

bool write_frame(int fd, const std::vector<std::uint8_t>& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t w =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

WireCode code_for_exception(std::exception_ptr e, double* retry_after_ms,
                            std::string* message) {
  if (retry_after_ms != nullptr) *retry_after_ms = 0.0;
  try {
    std::rethrow_exception(e);
  } catch (const runtime::OverloadedError& err) {
    if (retry_after_ms != nullptr) *retry_after_ms = err.retry_after_ms();
    if (message != nullptr) *message = err.what();
    return WireCode::kOverloaded;
  } catch (const runtime::DeadlineExceededError& err) {
    if (message != nullptr) *message = err.what();
    return WireCode::kDeadlineExceeded;
  } catch (const runtime::CancelledError& err) {
    if (message != nullptr) *message = err.what();
    return WireCode::kCancelled;
  } catch (const runtime::ShutdownError& err) {
    if (message != nullptr) *message = err.what();
    return WireCode::kShutdown;
  } catch (const runtime::RequestError& err) {
    if (message != nullptr) *message = err.what();
    return WireCode::kRequest;
  } catch (const runtime::EngineError& err) {
    if (message != nullptr) *message = err.what();
    return WireCode::kEngine;
  } catch (const ProtocolError& err) {
    if (message != nullptr) *message = err.what();
    return WireCode::kProtocol;
  } catch (const std::exception& err) {
    if (message != nullptr) *message = err.what();
    return WireCode::kInternal;
  } catch (...) {
    if (message != nullptr) *message = "unknown exception";
    return WireCode::kInternal;
  }
}

void throw_wire_error(const Response& r) {
  switch (r.code) {
    case WireCode::kOk:
      return;
    case WireCode::kOverloaded:
      throw runtime::OverloadedError(r.message, r.retry_after_ms);
    case WireCode::kDeadlineExceeded:
      throw runtime::DeadlineExceededError(r.message);
    case WireCode::kCancelled:
      throw runtime::CancelledError(r.message);
    case WireCode::kShutdown:
      throw runtime::ShutdownError(r.message);
    case WireCode::kRequest:
      throw runtime::RequestError(r.message);
    case WireCode::kEngine:
      throw runtime::EngineError(r.message);
    case WireCode::kProtocol:
      throw ProtocolError(r.message);
    case WireCode::kInternal:
      // Deliberately NOT an EngineError: kInternal marks a non-taxonomy
      // server-side exception, and reconstructing it as one would break the
      // code_for_exception/throw_wire_error fixed point the conformance
      // test pins down.
      throw std::runtime_error("server internal error: " + r.message);
  }
  throw ProtocolError("unknown response code");
}

}  // namespace serve
}  // namespace saufno
