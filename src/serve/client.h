#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/wire.h"
#include "tensor/tensor.h"

namespace saufno {
namespace serve {

/// Blocking TCP client for the serving frontend. One connection, framed
/// per serve/wire.h. NOT thread-safe — one thread drives a Client (open
/// several for concurrency, which is also how requests coalesce into
/// batches server-side).
///
/// Responses on a connection arrive in request order (the server completes
/// FIFO per connection), so the pipelined API is just send_* / recv_response
/// pairs: send N requests, then read N responses in the same order.
///
/// Error mapping: a non-kOk response is rethrown as the SAME typed
/// exception an in-process InferenceEngine::submit would have produced
/// (runtime::OverloadedError with retry_after_ms, DeadlineExceededError,
/// CancelledError, ShutdownError, RequestError, EngineError) — plus
/// ProtocolError / ConnectionClosedError for wire-level trouble.
class Client {
 public:
  Client() = default;
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connect to host:port (dotted-quad host). Throws std::runtime_error on
  /// failure. TCP_NODELAY is set — small frames must not wait for Nagle.
  void connect(const std::string& host, std::uint16_t port);
  void close();
  bool connected() const { return fd_ >= 0; }

  // --- one-call blocking API ------------------------------------------------
  /// Send one inference request and wait for its response. Returns the
  /// kelvin map; throws the mapped typed error otherwise.
  Tensor infer(Tensor power_map, const std::string& model = "",
               const std::string& tenant = "default",
               std::uint32_t deadline_ms = 0, std::uint8_t priority = 0);

  /// Round-trip a ping. Returns the server's state string ("serving" /
  /// "draining").
  std::string ping();

  /// Hot-load (or reload) `name` from `checkpoint_path` on the server.
  void load_model(const std::string& name, const std::string& checkpoint_path);
  /// Drain + unload `name` on the server. Throws on typed failure.
  void evict_model(const std::string& name);

  // --- pipelined API --------------------------------------------------------
  /// Send without waiting; returns the request id. Pair with
  /// recv_response() — responses come back in send order.
  std::uint64_t send_infer(Tensor power_map, const std::string& model = "",
                           const std::string& tenant = "default",
                           std::uint32_t deadline_ms = 0,
                           std::uint8_t priority = 0);
  /// Fire-and-forget cancellation of an in-flight request id.
  void send_cancel(std::uint64_t id);
  std::uint64_t send_ping();

  /// Block for the next response frame. Throws ConnectionClosedError on a
  /// clean server close, ProtocolError on a garbled stream. Does NOT throw
  /// on typed error responses — inspect `code` or call throw_if_error.
  Response recv_response();

  /// Rethrow a non-kOk response as its typed exception.
  static void throw_if_error(const Response& r) { throw_wire_error(r); }

 private:
  void send_bytes(const std::vector<std::uint8_t>& frame);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
};

}  // namespace serve
}  // namespace saufno
