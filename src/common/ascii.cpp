#include "common/ascii.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace saufno {

std::string ascii_heatmap(const std::vector<float>& field, int h, int w,
                          float lo, float hi) {
  // Dark -> hot ramp; ~10 levels is plenty for a terminal heatmap.
  static const char ramp[] = " .:-=+*#%@";
  constexpr int kLevels = 9;
  if (lo >= hi) {
    lo = *std::min_element(field.begin(), field.end());
    hi = *std::max_element(field.begin(), field.end());
  }
  const float span = (hi > lo) ? (hi - lo) : 1.f;
  std::string out;
  out.reserve(static_cast<std::size_t>(h) * (w + 1));
  for (int i = 0; i < h; ++i) {
    for (int j = 0; j < w; ++j) {
      const float t = (field[static_cast<std::size_t>(i) * w + j] - lo) / span;
      int idx = static_cast<int>(std::lround(t * kLevels));
      idx = std::clamp(idx, 0, kLevels);
      out.push_back(ramp[idx]);
    }
    out.push_back('\n');
  }
  return out;
}

TablePrinter::TablePrinter(std::vector<std::string> headers,
                           std::vector<int> widths)
    : headers_(std::move(headers)), widths_(std::move(widths)) {
  if (widths_.empty()) {
    widths_.resize(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      widths_[i] = std::max<int>(10, static_cast<int>(headers_[i].size()) + 2);
    }
  }
}

void TablePrinter::add_row(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

std::string TablePrinter::str() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const int w = i < widths_.size() ? widths_[i] : 12;
      os << cells[i];
      const int pad = w - static_cast<int>(cells[i].size());
      for (int p = 0; p < std::max(pad, 1); ++p) os << ' ';
    }
    os << '\n';
  };
  emit(headers_);
  int total = 0;
  for (int w : widths_) total += w;
  os << std::string(static_cast<std::size_t>(std::max(total, 8)), '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace saufno
