#include "common/fault.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "common/env.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace saufno {
namespace fault {
namespace {

std::atomic<bool> g_enabled{false};

/// splitmix64: decision stream is a pure function of (seed, site, index).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Per-site evaluation counter + fired tally. Sites are few and created
/// once per configure(), so map lookup happens only on the (already
/// fault-enabled) slow path.
struct SiteState {
  std::atomic<std::int64_t> evals{0};
  std::atomic<std::int64_t> fired{0};
};

struct Config {
  std::vector<Rule> rules;
  std::uint64_t seed = 0;
  // Sites are pre-registered from the rules plus looked up lazily for
  // wildcard rules; guarded by m (off the disabled hot path entirely).
  std::mutex m;
  std::map<std::string, std::unique_ptr<SiteState>> sites;

  SiteState& site(const std::string& name) {
    std::lock_guard<std::mutex> lk(m);
    auto& slot = sites[name];
    if (!slot) slot = std::make_unique<SiteState>();
    return *slot;
  }
};

/// Active config, swapped atomically on configure()/clear(). Old configs
/// are immortal (like the obs registry): a thread mid-point() may still
/// hold the previous pointer, and configure() happens a handful of times
/// per process (tests), never in steady state. Every config ever created
/// is parked in retired() so the memory stays reachable — LeakSanitizer
/// only reports unreachable blocks, and the ASan CI lane runs the whole
/// suite, which reconfigures dozens of times.
std::atomic<Config*> g_config{nullptr};

std::mutex g_retired_m;
std::vector<Config*>& retired() {
  static std::vector<Config*>* v = new std::vector<Config*>();
  return *v;
}

/// One-time SAUFNO_FAULT environment pickup.
std::once_flag g_env_once;

void install(Config* cfg) {
  g_config.store(cfg, std::memory_order_release);
  g_enabled.store(cfg != nullptr && !cfg->rules.empty(),
                  std::memory_order_release);
}

void init_from_env() {
  const char* spec = std::getenv("SAUFNO_FAULT");
  if (spec == nullptr || *spec == '\0') return;
  const int seed = env_int("SAUFNO_FAULT_SEED", 1234);
  if (!configure(spec, static_cast<std::uint64_t>(seed))) {
    SAUFNO_WARN << "SAUFNO_FAULT=\"" << spec
                << "\" could not be parsed; fault injection disabled";
  } else {
    SAUFNO_INFO << "fault injection armed: SAUFNO_FAULT=" << spec
                << " seed=" << seed;
  }
}

bool parse_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool parse_int(const std::string& s, long* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

std::vector<Rule> parse_spec(const std::string& spec, std::string* error) {
  std::vector<Rule> rules;
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return std::vector<Rule>();
  };
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string rule_str =
        spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (rule_str.empty()) {
      if (spec.empty()) break;
      return fail("empty rule (doubled or trailing comma)");
    }
    Rule r;
    bool first_token = true;
    bool have_action = false;
    std::size_t tpos = 0;
    while (tpos <= rule_str.size()) {
      const std::size_t colon = rule_str.find(':', tpos);
      const std::string tok =
          rule_str.substr(tpos, colon == std::string::npos ? std::string::npos
                                                           : colon - tpos);
      tpos = colon == std::string::npos ? rule_str.size() + 1 : colon + 1;
      if (tok.empty()) return fail("empty token in rule \"" + rule_str + "\"");
      const std::size_t eq = tok.find('=');
      if (eq != std::string::npos) {
        const std::string key = tok.substr(0, eq);
        const std::string val = tok.substr(eq + 1);
        if (key == "p") {
          double p = 0.0;
          if (!parse_double(val, &p) || p < 0.0 || p > 1.0) {
            return fail("bad probability \"" + val + "\" in \"" + rule_str +
                        "\" (need 0..1)");
          }
          r.p = p;
        } else if (key == "ms") {
          long ms = 0;
          if (!parse_int(val, &ms) || ms < 0 || ms > 60000) {
            return fail("bad delay \"" + val + "\" in \"" + rule_str +
                        "\" (need 0..60000 ms)");
          }
          r.delay_ms = static_cast<int>(ms);
          if (!have_action) {
            r.action = Rule::kDelay;  // ms= implies delay unless stated
            have_action = true;
          }
        } else if (key == "n") {
          long n = 0;
          if (!parse_int(val, &n) || n < 0) {
            return fail("bad count \"" + val + "\" in \"" + rule_str + "\"");
          }
          r.first_n = n;
        } else {
          return fail("unknown param \"" + key + "\" in \"" + rule_str +
                      "\" (accepted: p, ms, n)");
        }
      } else if (tok == "throw" || tok == "delay") {
        if (have_action) {
          return fail("two actions in rule \"" + rule_str + "\"");
        }
        r.action = tok == "throw" ? Rule::kThrow : Rule::kDelay;
        have_action = true;
        if (first_token) r.site = "*";  // action-first rule: every site
      } else {
        if (!first_token) {
          return fail("unexpected token \"" + tok + "\" in \"" + rule_str +
                      "\" (site must come first)");
        }
        r.site = tok;
      }
      first_token = false;
      if (colon == std::string::npos) break;
    }
    if (r.site.empty()) {
      return fail("rule \"" + rule_str + "\" names no site");
    }
    rules.push_back(std::move(r));
  }
  return rules;
}

bool enabled() {
  // First call pays the env parse; afterwards the off path is one relaxed
  // load. call_once keeps concurrent first callers safe.
  std::call_once(g_env_once, init_from_env);
  return g_enabled.load(std::memory_order_relaxed);
}

void point(const char* site) {
  Config* cfg = g_config.load(std::memory_order_acquire);
  if (cfg == nullptr) return;
  SiteState& st = cfg->site(site);
  const std::int64_t idx = st.evals.fetch_add(1, std::memory_order_relaxed);
  for (const Rule& r : cfg->rules) {
    if (r.site != "*" && r.site != site) continue;
    if (r.first_n >= 0 && idx >= r.first_n) continue;
    if (r.p < 1.0) {
      const std::uint64_t h = mix(cfg->seed ^ fnv1a(r.site) ^ fnv1a(site) ^
                                  static_cast<std::uint64_t>(idx));
      const double u =
          static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
      if (u >= r.p) continue;
    }
    st.fired.fetch_add(1, std::memory_order_relaxed);
    obs::counter(std::string("fault.injected.") + site).add();
    if (r.action == Rule::kDelay) {
      static obs::Counter& delays = obs::counter("fault.delays");
      delays.add();
      std::this_thread::sleep_for(std::chrono::milliseconds(r.delay_ms));
      continue;  // a delay rule does not stop later rules from firing
    }
    static obs::Counter& throws = obs::counter("fault.throws");
    throws.add();
    throw FaultInjectedError(std::string("injected fault at ") + site +
                             " (evaluation #" + std::to_string(idx) + ")");
  }
}

bool configure(const std::string& spec, std::uint64_t seed) {
  std::string err;
  std::vector<Rule> rules = parse_spec(spec, &err);
  if (rules.empty() && !spec.empty()) {
    SAUFNO_WARN << "fault spec rejected: " << err;
    return false;
  }
  Config* cfg = new Config();  // immortal; see g_config note
  cfg->rules = std::move(rules);
  cfg->seed = seed;
  {
    std::lock_guard<std::mutex> lk(g_retired_m);
    retired().push_back(cfg);
  }
  install(cfg->rules.empty() ? nullptr : cfg);
  return true;
}

void clear() { install(nullptr); }

std::int64_t injected_count(const std::string& site) {
  Config* cfg = g_config.load(std::memory_order_acquire);
  if (cfg == nullptr) return 0;
  std::lock_guard<std::mutex> lk(cfg->m);
  auto it = cfg->sites.find(site);
  return it == cfg->sites.end()
             ? 0
             : it->second->fired.load(std::memory_order_relaxed);
}

}  // namespace fault
}  // namespace saufno
