#pragma once

#include <string>

namespace saufno {

/// Benchmark scale selected via the SAUFNO_SCALE environment variable.
///
/// The paper trains for 200+ epochs on 5000-sample datasets per chip on an
/// RTX 3090; this reproduction runs on one CPU core, so benches default to a
/// reduced `smoke` scale whose relative comparisons (who wins, by how much)
/// are preserved. `paper` raises sample counts / epochs / resolutions toward
/// the published configuration for long unattended runs.
enum class Scale { kSmoke, kPaper };

Scale bench_scale();
const char* scale_name(Scale s);

/// Integer environment override helper: returns `fallback` when unset.
/// Malformed values (trailing garbage, non-numeric) and values outside int
/// range log a warning and fall back — same contract as env_int_in_range,
/// minus the range clamp.
int env_int(const char* name, int fallback);

/// Range-validated integer environment override — the single parser for
/// runtime knobs (SAUFNO_NUM_THREADS, batching limits, ...). Malformed or
/// out-of-range values log a warning and fall back; `fallback` itself is
/// clamped into [lo, hi] so callers cannot smuggle a bad default through.
int env_int_in_range(const char* name, int fallback, int lo, int hi);

/// Named-choice environment knob (SAUFNO_LOG_LEVEL and friends): the value
/// may be one of `names[0..n_names)` (matched case-insensitively) or an
/// integer index in [0, n_names). Unknown values log a warning listing the
/// accepted names and fall back; `fallback` is clamped into range.
int env_choice(const char* name, int fallback, const char* const* names,
               int n_names);

/// Pick `smoke_v` or `paper_v` according to bench_scale().
int scaled(int smoke_v, int paper_v);

}  // namespace saufno
