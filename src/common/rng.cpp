#include "common/rng.h"

#include <cmath>

namespace saufno {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the four xoshiro words from splitmix64 as recommended by the
  // algorithm's authors; guards against the all-zero state.
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  // Box-Muller; u1 is kept away from 0 so log() stays finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return r % n;
}

void Rng::shuffle(std::vector<int>& v) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(next_below(i));
    std::swap(v[i - 1], v[j]);
  }
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace saufno
