#pragma once

#include <cstdint>
#include <vector>

namespace saufno {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every stochastic component in the library (weight init, power-map
/// sampling, dataset shuffling) draws from an explicitly-seeded Rng so that
/// experiments are bit-reproducible across runs. We deliberately avoid
/// std::mt19937 + std::distributions because their output is not guaranteed
/// to be identical across standard library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double normal();

  /// Normal with the given mean / stddev.
  double normal(double mean, double stddev);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Fisher-Yates shuffle of an index vector.
  void shuffle(std::vector<int>& v);

  /// Derive an independent child stream (for per-sample generators).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace saufno
