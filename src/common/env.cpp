#include "common/env.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.h"

namespace saufno {

Scale bench_scale() {
  const char* v = std::getenv("SAUFNO_SCALE");
  if (v != nullptr && std::strcmp(v, "paper") == 0) return Scale::kPaper;
  return Scale::kSmoke;
}

const char* scale_name(Scale s) {
  return s == Scale::kPaper ? "paper" : "smoke";
}

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') {
    // A knob with trailing garbage ("8x", "1e3") is a user mistake, not a
    // value — same warn-and-fall-back contract as env_int_in_range.
    SAUFNO_WARN << name << "=\"" << v << "\" is not an integer; using "
                << fallback;
    return fallback;
  }
  if (errno == ERANGE || parsed < INT_MIN || parsed > INT_MAX) {
    // strtol saturates at LONG_MIN/LONG_MAX; the old blind int cast then
    // truncated to an arbitrary value. Reject instead of wrapping.
    SAUFNO_WARN << name << "=\"" << v << "\" overflows int; using "
                << fallback;
    return fallback;
  }
  return static_cast<int>(parsed);
}

int env_int_in_range(const char* name, int fallback, int lo, int hi) {
  fallback = std::min(std::max(fallback, lo), hi);
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') {
    SAUFNO_WARN << name << "=\"" << v << "\" is not an integer; using "
                << fallback;
    return fallback;
  }
  // ERANGE saturation lands outside [lo, hi] on LP64, but check explicitly
  // so ILP32 (long == int) cannot wrap a huge value into range.
  if (errno == ERANGE || parsed < lo || parsed > hi) {
    SAUFNO_WARN << name << "=" << parsed << " outside [" << lo << ", " << hi
                << "]; using " << fallback;
    return fallback;
  }
  return static_cast<int>(parsed);
}

int env_choice(const char* name, int fallback, const char* const* names,
               int n_names) {
  fallback = std::min(std::max(fallback, 0), n_names - 1);
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  for (int i = 0; i < n_names; ++i) {
    const char* a = v;
    const char* b = names[i];
    while (*a != '\0' && *b != '\0' &&
           std::tolower(static_cast<unsigned char>(*a)) ==
               std::tolower(static_cast<unsigned char>(*b))) {
      ++a;
      ++b;
    }
    if (*a == '\0' && *b == '\0') return i;
  }
  // Numeric form: an index into the same list, with the hardened integer
  // contract (trailing garbage / overflow warn and fall back below).
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(v, &end, 10);
  if (end != v && *end == '\0' && errno != ERANGE && parsed >= 0 &&
      parsed < n_names) {
    return static_cast<int>(parsed);
  }
  std::string accepted;
  for (int i = 0; i < n_names; ++i) {
    if (i > 0) accepted += ", ";
    accepted += names[i];
  }
  SAUFNO_WARN << name << "=\"" << v << "\" is not one of {" << accepted
              << "} or an index in [0, " << (n_names - 1) << "]; using "
              << names[fallback];
  return fallback;
}

int scaled(int smoke_v, int paper_v) {
  return bench_scale() == Scale::kPaper ? paper_v : smoke_v;
}

}  // namespace saufno
