#include "common/env.h"

#include <cstdlib>
#include <cstring>

namespace saufno {

Scale bench_scale() {
  const char* v = std::getenv("SAUFNO_SCALE");
  if (v != nullptr && std::strcmp(v, "paper") == 0) return Scale::kPaper;
  return Scale::kSmoke;
}

const char* scale_name(Scale s) {
  return s == Scale::kPaper ? "paper" : "smoke";
}

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<int>(parsed);
}

int scaled(int smoke_v, int paper_v) {
  return bench_scale() == Scale::kPaper ? paper_v : smoke_v;
}

}  // namespace saufno
