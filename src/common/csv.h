#pragma once

#include <string>
#include <vector>

namespace saufno {

/// Tiny CSV writer: benches dump the reproduced table/figure data to CSV so
/// results can be diffed or plotted outside the terminal.
class CsvWriter {
 public:
  /// Opens (truncates) `path`; throws on failure.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void row(const std::vector<std::string>& cells);

 private:
  struct Impl;
  Impl* impl_;
};

/// Write a 2-D scalar field as CSV (one row per grid row).
void write_field_csv(const std::string& path, const std::vector<float>& field,
                     int h, int w);

}  // namespace saufno
