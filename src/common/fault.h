#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace saufno {
namespace fault {

/// Deterministic fault-injection framework (chaos harness).
///
/// Production code marks injection points with SAUFNO_FAULT_POINT("site");
/// with no spec configured the cost is one relaxed atomic load + branch.
/// A spec — from the SAUFNO_FAULT environment variable or configure() —
/// turns selected points into seeded probabilistic faults:
///
///   SAUFNO_FAULT=alloc:p=0.01,forward:throw:p=0.001,delay:ms=50:p=0.05
///
/// Grammar: comma-separated rules; each rule is colon-separated tokens
///   [site][:action][:param=value]...
/// where `site` names an injection point ("alloc", "gemm", "fft", "plan",
/// "forward", or "*" for all; a rule that STARTS with an action token
/// applies to every site), `action` is `throw` (default; raises
/// FaultInjectedError at the point) or `delay` (sleeps), and params are
///   p=<0..1>   fire probability per evaluation (default 1)
///   ms=<int>   delay duration for `delay` rules (default 1)
///   n=<int>    fire only on the first n evaluations of the rule's site
///              (deterministic "fail exactly the first k attempts" harness)
///
/// Decisions are a pure function of (seed, site, per-site evaluation
/// counter), so a fixed SAUFNO_FAULT_SEED replays the same fault sequence
/// per site regardless of wall clock; thread interleaving only changes
/// which thread draws which index. Injected faults are counted per site in
/// obs ("fault.injected.<site>", plus "fault.delays"/"fault.throws").
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& msg)
      : std::runtime_error(msg) {}
};

struct Rule {
  std::string site;  // "*" matches every site
  enum Action { kThrow, kDelay } action = kThrow;
  double p = 1.0;    // fire probability per evaluation
  int delay_ms = 1;  // for kDelay
  int64_t first_n = -1;  // >=0: fire only on evaluations [0, first_n)
};

/// Parse a spec string. On success returns the rules; on failure returns an
/// empty vector and sets *error (when non-null) to a diagnostic.
std::vector<Rule> parse_spec(const std::string& spec, std::string* error);

/// True when any rules are active. Inlined relaxed load — the only cost
/// production code pays when injection is off.
bool enabled();

/// Evaluate the injection point `site` against the active rules. May throw
/// FaultInjectedError or sleep; returns normally otherwise. Call through
/// SAUFNO_FAULT_POINT so the disabled path stays a load+branch.
void point(const char* site);

/// Install `spec` programmatically (test hook; wins over SAUFNO_FAULT until
/// clear()). Returns false and installs nothing when the spec is malformed.
/// Resets per-site evaluation counters so runs are reproducible.
bool configure(const std::string& spec, std::uint64_t seed);

/// Remove all active rules (environment spec included).
void clear();

/// Total faults fired (throws + delays) at `site` since the last
/// configure()/clear().
std::int64_t injected_count(const std::string& site);

#define SAUFNO_FAULT_POINT(site)                     \
  do {                                               \
    if (::saufno::fault::enabled()) ::saufno::fault::point(site); \
  } while (0)

}  // namespace fault
}  // namespace saufno
