#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace saufno {

/// Escape a string for embedding in a JSON string literal (quotes not
/// included).
std::string json_escape(const std::string& s);

/// Splice `"key": fragment` into the top-level object of the JSON file at
/// `path`, so a bench can contribute a section to a file another bench
/// owns (e.g. bench_runtime_scaling merging "overload" into
/// BENCH_rollout.json). If the file is missing or not a JSON object, a
/// fresh `{"key": fragment}` document is written instead. Textual splice,
/// not a parse: re-running the producer re-creates the file, and the CI
/// `json.load` smoke steps catch any malformed result.
bool json_merge_field(const std::string& path, const std::string& key,
                      const std::string& fragment);

/// Minimal streaming JSON writer shared by the bench BENCH_*.json emitters
/// and the obs exporters. Handles escaping, comma placement and 2-space
/// indentation; the caller supplies structure:
///
///   JsonWriter w;
///   w.begin_object();
///   w.field("bench", "bench_rollout");
///   w.key("results"); w.begin_array();
///     w.begin_object(); w.field("steps_per_sec", 424.0); w.end_object();
///   w.end_array();
///   w.end_object();
///   w.write_file("BENCH_rollout.json");
///
/// It is intentionally write-only and non-validating beyond bracket
/// pairing — malformed call sequences produce malformed JSON, and the CI
/// smoke steps that `json.load` every emitted file are the net that catches
/// that.
class JsonWriter {
 public:
  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  /// Object key; must be followed by exactly one value/container.
  void key(const std::string& k);

  void value(const std::string& v);
  void value(const char* v) { value(std::string(v)); }
  void value(double v, int precision = 6);
  void value(int64_t v);
  void value(int v) { value(static_cast<int64_t>(v)); }
  void value(bool v);
  /// Splice a pre-rendered JSON fragment (e.g. an obs::dump_json snapshot)
  /// as this value, verbatim.
  void raw_value(const std::string& json);

  template <typename T>
  void field(const std::string& k, const T& v) {
    key(k);
    value(v);
  }
  void field(const std::string& k, double v, int precision) {
    key(k);
    value(v, precision);
  }

  const std::string& str() const { return out_; }
  /// Write the document to `path`; returns false (and prints) on failure.
  bool write_file(const std::string& path) const;

 private:
  void open(char c);
  void close(char c);
  /// Comma/newline/indent bookkeeping before a value or key.
  void pre_value();
  void indent();

  std::string out_;
  int depth_ = 0;
  bool need_comma_ = false;
  bool after_key_ = false;
};

}  // namespace saufno
