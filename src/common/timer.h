#pragma once

#include <chrono>

namespace saufno {

/// Monotonic wall-clock stopwatch used by the speedup benchmarks (§IV-D of
/// the paper compares seconds-per-prediction across solvers).
class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  /// Elapsed seconds since construction / last reset.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace saufno
