#include "common/csv.h"

#include <fstream>

#include "common/logging.h"

namespace saufno {

struct CsvWriter::Impl {
  std::ofstream out;
};

CsvWriter::CsvWriter(const std::string& path) : impl_(new Impl) {
  impl_->out.open(path);
  SAUFNO_CHECK(impl_->out.good(), "cannot open CSV output: " + path);
}

CsvWriter::~CsvWriter() { delete impl_; }

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) impl_->out << ',';
    // Quote cells containing separators; the data we emit is numeric or
    // simple identifiers, so this minimal escaping suffices.
    const bool needs_quote = cells[i].find_first_of(",\"\n") != std::string::npos;
    if (needs_quote) {
      impl_->out << '"';
      for (char c : cells[i]) {
        if (c == '"') impl_->out << '"';
        impl_->out << c;
      }
      impl_->out << '"';
    } else {
      impl_->out << cells[i];
    }
  }
  impl_->out << '\n';
}

void write_field_csv(const std::string& path, const std::vector<float>& field,
                     int h, int w) {
  std::ofstream out(path);
  SAUFNO_CHECK(out.good(), "cannot open CSV output: " + path);
  for (int i = 0; i < h; ++i) {
    for (int j = 0; j < w; ++j) {
      if (j) out << ',';
      out << field[static_cast<std::size_t>(i) * w + j];
    }
    out << '\n';
  }
}

}  // namespace saufno
