#pragma once

#include <string>
#include <vector>

namespace saufno {

/// Render a scalar field (row-major, `h` rows × `w` cols) as an ASCII-art
/// heatmap. Used by the Fig. 4 / Fig. 5 reproduction bench to show
/// prediction-vs-ground-truth temperature maps directly in the terminal.
/// Values are normalized between `lo` and `hi` (pass lo >= hi to autoscale).
std::string ascii_heatmap(const std::vector<float>& field, int h, int w,
                          float lo = 0.f, float hi = -1.f);

/// Fixed-width table printer used by the table-reproduction benches so the
/// output visually matches the paper tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers,
                        std::vector<int> widths = {});
  void add_row(const std::vector<std::string>& cells);
  /// Render with a header rule; returns the whole table as one string.
  std::string str() const;

 private:
  std::vector<std::string> headers_;
  std::vector<int> widths_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helper ("%.3f" etc.).
std::string fmt(double v, int precision = 3);

}  // namespace saufno
