#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <stdexcept>

#include "common/env.h"

namespace saufno {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
// SAUFNO_LOG_LEVEL is applied once, on first logger use. State machine (not
// std::call_once) because the parser itself may WARN about a bad value:
// that nested log call must fall through at the default level instead of
// deadlocking on a re-entered once-flag.
std::atomic<int> g_env_applied{0};

void apply_env_level() {
  int expected = 0;
  if (!g_env_applied.compare_exchange_strong(expected, 1,
                                             std::memory_order_acq_rel)) {
    return;
  }
  static const char* const kNames[] = {"debug", "info", "warn", "error"};
  const int v = env_choice("SAUFNO_LOG_LEVEL",
                           static_cast<int>(g_level.load()), kNames, 4);
  g_level.store(static_cast<LogLevel>(v));
}

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  // An explicit programmatic level wins over the env knob; mark the env as
  // consumed so a later first-log cannot clobber this choice.
  g_env_applied.store(1, std::memory_order_release);
  g_level.store(level);
}

LogLevel log_level() {
  apply_env_level();
  return g_level.load();
}

void log_message(LogLevel level, const std::string& msg) {
  apply_env_level();
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::fprintf(stderr, "[saufno %s] %s\n", level_name(level), msg.c_str());
}

void fail(const std::string& msg) { throw std::runtime_error(msg); }

}  // namespace saufno
