#pragma once

#include <sstream>
#include <string>

namespace saufno {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Minimal leveled logger writing to stderr. The global level can be raised
/// to silence training-progress chatter in tests (`set_log_level`).
void set_log_level(LogLevel level);
LogLevel log_level();
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

#define SAUFNO_LOG(level) ::saufno::detail::LogLine(::saufno::LogLevel::level)
#define SAUFNO_INFO SAUFNO_LOG(kInfo)
#define SAUFNO_WARN SAUFNO_LOG(kWarn)
#define SAUFNO_ERROR SAUFNO_LOG(kError)

/// Fatal-error helper: throws std::runtime_error with location context.
[[noreturn]] void fail(const std::string& msg);

/// Runtime precondition check used at API boundaries (always on, including
/// release builds — shape errors in a tensor library must never be UB).
#define SAUFNO_CHECK(cond, msg)                                      \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::saufno::fail(std::string("check failed: " #cond " — ") + (msg)); \
    }                                                                \
  } while (0)

}  // namespace saufno
