#include "common/json_writer.h"

#include <cmath>

namespace saufno {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::indent() {
  for (int i = 0; i < depth_; ++i) out_ += "  ";
}

void JsonWriter::pre_value() {
  if (after_key_) {
    after_key_ = false;
    return;  // value follows its key on the same line
  }
  if (need_comma_) out_ += ',';
  if (depth_ > 0) out_ += '\n';
  indent();
}

void JsonWriter::open(char c) {
  pre_value();
  out_.push_back(c);
  ++depth_;
  need_comma_ = false;
}

void JsonWriter::close(char c) {
  --depth_;
  out_ += '\n';
  indent();
  out_.push_back(c);
  need_comma_ = true;
  if (depth_ == 0) out_ += '\n';
}

void JsonWriter::key(const std::string& k) {
  pre_value();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\": ";
  after_key_ = true;
  need_comma_ = true;
}

void JsonWriter::value(const std::string& v) {
  pre_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  need_comma_ = true;
}

void JsonWriter::value(double v, int precision) {
  pre_value();
  if (!std::isfinite(v)) {
    // JSON has no NaN/Inf literal; null keeps the document parseable.
    out_ += "null";
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    out_ += buf;
  }
  need_comma_ = true;
}

void JsonWriter::value(int64_t v) {
  pre_value();
  out_ += std::to_string(v);
  need_comma_ = true;
}

void JsonWriter::value(bool v) {
  pre_value();
  out_ += v ? "true" : "false";
  need_comma_ = true;
}

void JsonWriter::raw_value(const std::string& json) {
  pre_value();
  out_ += json;
  need_comma_ = true;
}

bool json_merge_field(const std::string& path, const std::string& key,
                      const std::string& fragment) {
  std::string doc;
  if (std::FILE* f = std::fopen(path.c_str(), "r")) {
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) doc.append(buf, n);
    std::fclose(f);
  }
  // Find the closing brace of the top-level object; everything after it is
  // trailing whitespace from write_file.
  const std::size_t close = doc.find_last_of('}');
  const std::size_t open = doc.find_first_not_of(" \t\r\n");
  std::string out;
  if (close == std::string::npos || open == std::string::npos ||
      doc[open] != '{') {
    // Missing or not an object: start a fresh document.
    out = "{\n  \"" + json_escape(key) + "\": " + fragment + "\n}\n";
  } else {
    out = doc.substr(0, close);
    // Strip trailing whitespace, then decide if the object already has
    // members (needs a separating comma).
    while (!out.empty() && (out.back() == ' ' || out.back() == '\n' ||
                            out.back() == '\r' || out.back() == '\t')) {
      out.pop_back();
    }
    if (!out.empty() && out.back() != '{') out += ',';
    out += "\n  \"" + json_escape(key) + "\": " + fragment + "\n}\n";
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("could not open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("\nmerged \"%s\" into %s\n", key.c_str(), path.c_str());
  return true;
}

bool JsonWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("could not open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(out_.data(), 1, out_.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
  return true;
}

}  // namespace saufno
