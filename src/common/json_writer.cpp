#include "common/json_writer.h"

#include <cmath>

namespace saufno {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::indent() {
  for (int i = 0; i < depth_; ++i) out_ += "  ";
}

void JsonWriter::pre_value() {
  if (after_key_) {
    after_key_ = false;
    return;  // value follows its key on the same line
  }
  if (need_comma_) out_ += ',';
  if (depth_ > 0) out_ += '\n';
  indent();
}

void JsonWriter::open(char c) {
  pre_value();
  out_.push_back(c);
  ++depth_;
  need_comma_ = false;
}

void JsonWriter::close(char c) {
  --depth_;
  out_ += '\n';
  indent();
  out_.push_back(c);
  need_comma_ = true;
  if (depth_ == 0) out_ += '\n';
}

void JsonWriter::key(const std::string& k) {
  pre_value();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\": ";
  after_key_ = true;
  need_comma_ = true;
}

void JsonWriter::value(const std::string& v) {
  pre_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  need_comma_ = true;
}

void JsonWriter::value(double v, int precision) {
  pre_value();
  if (!std::isfinite(v)) {
    // JSON has no NaN/Inf literal; null keeps the document parseable.
    out_ += "null";
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    out_ += buf;
  }
  need_comma_ = true;
}

void JsonWriter::value(int64_t v) {
  pre_value();
  out_ += std::to_string(v);
  need_comma_ = true;
}

void JsonWriter::value(bool v) {
  pre_value();
  out_ += v ? "true" : "false";
  need_comma_ = true;
}

void JsonWriter::raw_value(const std::string& json) {
  pre_value();
  out_ += json;
  need_comma_ = true;
}

bool JsonWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("could not open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(out_.data(), 1, out_.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
  return true;
}

}  // namespace saufno
