#pragma once

#include <vector>

#include "thermal/grid.h"

namespace saufno {
namespace thermal {
namespace detail {

/// Precomputed 7-point finite-volume operator: face conductances, diagonal
/// and RHS of  A T = b  for the steady problem. Shared by the steady CG
/// solver and the transient integrator (which augments the diagonal with
/// the capacity term C/dt).
struct Stencil {
  int nx = 0, ny = 0, nz = 0;
  std::vector<double> gx;    // x-face conductance, [(iz*ny+iy)*(nx-1)+ix]
  std::vector<double> gy;    // y-face conductance, [(iz*(ny-1)+iy)*nx+ix]
  std::vector<double> gz;    // z-face conductance, [(iz*ny+iy)*nx+ix]
  std::vector<double> diag;  // per-cell diagonal (incl. Robin terms)
  std::vector<double> b;     // RHS (power + Robin ambient terms)

  int64_t cell(int iz, int iy, int ix) const {
    return (static_cast<int64_t>(iz) * ny + iy) * nx + ix;
  }
};

Stencil build_stencil(const ThermalGrid& g);

/// y = A x for the stencil (diag minus neighbor couplings).
void apply(const Stencil& s, const std::vector<double>& x,
           std::vector<double>& y);

/// z-line (vertical tridiagonal) preconditioner: exact Thomas solve per
/// lateral column. The chip stack is extremely anisotropic, so handling
/// the stiff vertical coupling exactly cuts CG iteration counts by an
/// order of magnitude versus Jacobi.
void zline_precondition(const Stencil& s, const std::vector<double>& r,
                        std::vector<double>& z);

double dot(const std::vector<double>& a, const std::vector<double>& b);

/// Jacobi-free preconditioned CG on the (possibly diagonal-augmented)
/// stencil. Returns (iterations, final relative residual, converged).
struct CgResult {
  int iterations = 0;
  double residual = 0.0;
  bool converged = false;
};
CgResult pcg_solve(const Stencil& s, const std::vector<double>& rhs,
                   std::vector<double>& x, double tol, int max_iters);

}  // namespace detail
}  // namespace thermal
}  // namespace saufno
