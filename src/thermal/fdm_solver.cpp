#include "thermal/fdm_solver.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "thermal/stencil.h"

namespace saufno {
namespace thermal {

double ThermalSolution::max_temperature() const {
  SAUFNO_CHECK(!temperature.empty(), "empty solution");
  return *std::max_element(temperature.begin(), temperature.end());
}

double ThermalSolution::min_temperature() const {
  SAUFNO_CHECK(!temperature.empty(), "empty solution");
  return *std::min_element(temperature.begin(), temperature.end());
}

std::vector<float> ThermalSolution::layer_map(const ThermalGrid& g,
                                              int chip_layer) const {
  return layer_map_of(temperature, g, chip_layer);
}

std::vector<float> layer_map_of(const std::vector<double>& field,
                                const ThermalGrid& g, int chip_layer) {
  // Average over the z-cells of the layer (thin layers have exactly one).
  std::vector<float> map(static_cast<std::size_t>(g.ny) * g.nx, 0.f);
  int count = 0;
  for (int iz = 0; iz < g.nz; ++iz) {
    if (g.layer_of_z[static_cast<std::size_t>(iz)] != chip_layer) continue;
    ++count;
    for (int iy = 0; iy < g.ny; ++iy) {
      for (int ix = 0; ix < g.nx; ++ix) {
        map[static_cast<std::size_t>(iy) * g.nx + ix] += static_cast<float>(
            field[static_cast<std::size_t>(g.cell(iz, iy, ix))]);
      }
    }
  }
  SAUFNO_CHECK(count > 0, "layer has no z-cells");
  const float inv = 1.f / static_cast<float>(count);
  for (auto& v : map) v *= inv;
  return map;
}

ThermalSolution FdmSolver::solve(const ThermalGrid& grid) const {
  SAUFNO_CHECK(grid.num_cells() > 0, "empty grid");
  SAUFNO_CHECK(grid.h_top > 0.0 || grid.h_bottom > 0.0,
               "no heat escape path: the steady problem is singular");
  const detail::Stencil s = detail::build_stencil(grid);
  // Warm start from ambient.
  std::vector<double> x(static_cast<std::size_t>(grid.num_cells()),
                        grid.ambient);
  const auto cg = detail::pcg_solve(s, s.b, x, opt_.tol, opt_.max_iters);
  ThermalSolution sol;
  sol.temperature = std::move(x);
  sol.iterations = cg.iterations;
  sol.residual = cg.residual;
  sol.converged = cg.converged;
  return sol;
}

}  // namespace thermal
}  // namespace saufno
