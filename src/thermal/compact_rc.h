#pragma once

#include <string>
#include <vector>

#include "chip/power_gen.h"

namespace saufno {
namespace thermal {

/// Block-level compact thermal network — the HotSpot [37] substitute.
///
/// HotSpot's methodology: one thermal node per functional block per layer,
/// vertical resistances through the stack, lateral resistances between
/// adjacent blocks, a lumped spreader/sink path to ambient, solved as a
/// linear resistive network. This reproduces both HotSpot's speed (the
/// system has tens of unknowns, not tens of thousands) and its systematic
/// overestimation of temperature versus field solvers (Table IV shows
/// HotSpot ~10 K above COMSOL/MTA): the lumped sink path cannot model
/// in-plane spreading inside the copper, so the effective sink resistance
/// seen by each block is higher.
class CompactRcSolver {
 public:
  struct BlockTemp {
    std::string name;
    int layer;       // chip layer index
    double temperature;  // K
  };

  struct Result {
    std::vector<BlockTemp> blocks;
    double max_temperature() const;
    double min_temperature() const;
  };

  explicit CompactRcSolver(const chip::ChipSpec& spec);

  /// Block-level network (HotSpot's "block mode"): tens of nodes, solved
  /// directly. Microseconds per query.
  Result solve(const chip::PowerAssignment& pa) const;

  /// Grid-mode network (HotSpot's "grid mode"): one RC node per voxel of
  /// an res x res lateral grid, the same derated sink path as block mode,
  /// relaxed with Gauss-Seidel — HotSpot's historical solver. This is the
  /// cost-realistic variant used by the §IV-D speed comparison: the block
  /// model answers in microseconds, but published HotSpot timings (98 s in
  /// the paper's Table IV setup) come from grid mode on fine meshes.
  struct GridResult {
    double max_temperature = 0.0;
    double min_temperature = 0.0;
    int iterations = 0;
    bool converged = false;
  };
  GridResult solve_grid(const chip::PowerAssignment& pa, int res,
                        double tol = 1e-6, int max_iters = 200000) const;

 private:
  chip::ChipSpec spec_;
};

}  // namespace thermal
}  // namespace saufno
