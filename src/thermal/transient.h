#pragma once

#include <functional>

#include "thermal/fdm_solver.h"

namespace saufno {
namespace thermal {

/// Transient (time-dependent) heat solver — Eq. (1)-(2) of the paper before
/// the steady-state simplification, and the "broader range of thermal
/// analysis tasks" its Section V names as future work.
///
/// Discretization: the same finite-volume stencil as FdmSolver plus the
/// capacity term rho*c_p dT/dt, integrated with implicit (backward) Euler:
///
///   (C/dt + A) T^{n+1} = (C/dt) T^n + b
///
/// Implicit Euler is unconditionally stable, which matters here: the stack
/// mixes micrometre device layers with millimetre copper, so the explicit
/// stability limit would be sub-microsecond while thermal transients of
/// interest run for milliseconds to seconds.
class TransientSolver {
 public:
  struct Options {
    double dt = 1e-3;        // step (s)
    int steps = 100;
    double tol = 1e-8;       // CG relative tolerance per step
    int max_iters = 5000;
  };

  struct Result {
    /// Field max temperature after each step (the transient Tj curve).
    std::vector<double> max_temperature_history;
    /// Final temperature field (same layout as ThermalSolution).
    ThermalSolution final_state;
    double total_seconds = 0.0;
  };

  TransientSolver() = default;
  explicit TransientSolver(Options opt) : opt_(opt) {}

  /// Integrate from a uniform `initial_K` field (ambient when negative).
  /// The grid's q is held constant over the window (a power step), so the
  /// trajectory relaxes toward the FdmSolver steady state — the property
  /// the unit tests pin down.
  Result solve(const ThermalGrid& grid, double initial_K = -1.0) const;

  /// Integrate from a full initial temperature field (cell layout matching
  /// the grid). This is how power-state sequences are chained: feed the
  /// previous phase's `final_state.temperature` in as the next start.
  /// Rejects fields whose size does not match the grid.
  Result solve_from(const ThermalGrid& grid,
                    std::vector<double> initial_field) const;

  /// Per-step observation hook: called after every implicit-Euler step with
  /// the 0-based step index and the full temperature field. This is the
  /// trajectory-generation entry point for the rollout surrogate — the
  /// recorded fields become the per-step training targets.
  using FieldCallback =
      std::function<void(int step, const std::vector<double>& field)>;

  /// As `solve_from`, invoking `on_step` (when set) after each step.
  Result solve_from(const ThermalGrid& grid, std::vector<double> initial_field,
                    const FieldCallback& on_step) const;

 private:
  Options opt_{};
};

}  // namespace thermal
}  // namespace saufno
