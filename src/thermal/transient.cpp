#include "thermal/transient.h"

#include <algorithm>

#include "common/logging.h"
#include "common/timer.h"
#include "thermal/stencil.h"

namespace saufno {
namespace thermal {

TransientSolver::Result TransientSolver::solve(const ThermalGrid& grid,
                                               double initial_K) const {
  const double t0 = initial_K > 0 ? initial_K : grid.ambient;
  return solve_from(grid,
                    std::vector<double>(
                        static_cast<std::size_t>(grid.num_cells()), t0));
}

TransientSolver::Result TransientSolver::solve_from(
    const ThermalGrid& grid, std::vector<double> initial_field) const {
  return solve_from(grid, std::move(initial_field), FieldCallback{});
}

TransientSolver::Result TransientSolver::solve_from(
    const ThermalGrid& grid, std::vector<double> initial_field,
    const FieldCallback& on_step) const {
  SAUFNO_CHECK(grid.num_cells() > 0, "empty grid");
  SAUFNO_CHECK(static_cast<int64_t>(initial_field.size()) ==
                   grid.num_cells(),
               "initial field size " +
                   std::to_string(initial_field.size()) +
                   " does not match the grid (" +
                   std::to_string(grid.num_cells()) + " cells)");
  SAUFNO_CHECK(!grid.c.empty(), "grid has no heat-capacity field");
  SAUFNO_CHECK(opt_.dt > 0, "transient dt must be > 0");
  SAUFNO_CHECK(opt_.steps > 0, "transient steps must be > 0");
  Timer timer;

  // Steady stencil, then augment: (C/dt + A) on the diagonal; the moving
  // part of the RHS is (C/dt) T^n, re-added every step.
  detail::Stencil s = detail::build_stencil(grid);
  const std::size_t n = static_cast<std::size_t>(grid.num_cells());
  std::vector<double> cap_over_dt(n);
  for (int iz = 0; iz < grid.nz; ++iz) {
    const double vol =
        grid.dx * grid.dy * grid.dz[static_cast<std::size_t>(iz)];
    for (int iy = 0; iy < grid.ny; ++iy) {
      for (int ix = 0; ix < grid.nx; ++ix) {
        const std::size_t c =
            static_cast<std::size_t>(grid.cell(iz, iy, ix));
        cap_over_dt[c] = grid.c[c] * vol / opt_.dt;
      }
    }
  }
  const std::vector<double> steady_b = s.b;
  for (std::size_t i = 0; i < n; ++i) s.diag[i] += cap_over_dt[i];

  Result res;
  std::vector<double> t = std::move(initial_field);
  std::vector<double> rhs(n);
  res.max_temperature_history.reserve(static_cast<std::size_t>(opt_.steps));
  for (int step = 0; step < opt_.steps; ++step) {
    for (std::size_t i = 0; i < n; ++i) {
      rhs[i] = steady_b[i] + cap_over_dt[i] * t[i];
    }
    // Warm-start each solve from the previous state: adjacent steps are
    // close, so CG typically converges in a handful of iterations.
    const auto cg = detail::pcg_solve(s, rhs, t, opt_.tol, opt_.max_iters);
    SAUFNO_CHECK(cg.converged, "transient step failed to converge");
    res.max_temperature_history.push_back(
        *std::max_element(t.begin(), t.end()));
    if (on_step) on_step(step, t);
  }
  res.final_state.temperature = std::move(t);
  res.final_state.converged = true;
  res.final_state.iterations = opt_.steps;
  res.total_seconds = timer.seconds();
  return res;
}

}  // namespace thermal
}  // namespace saufno
