#include "thermal/grid.h"

#include "common/logging.h"

namespace saufno {
namespace thermal {
namespace {

/// Baseline z-subdivision per layer kind: thin active/TIM layers get one
/// voxel, the thick copper parts enough to resolve the vertical gradient.
int z_cells_for(const chip::LayerSpec& layer) {
  if (layer.thickness > 4e-3) return 3;  // heat-sink base
  if (layer.thickness > 4e-4) return 2;  // spreader
  return 1;                              // device layers, TIM
}

}  // namespace

int ThermalGrid::z_begin_of_layer(int layer) const {
  for (int iz = 0; iz < nz; ++iz) {
    if (layer_of_z[static_cast<std::size_t>(iz)] == layer) return iz;
  }
  return -1;
}

double ThermalGrid::total_power() const {
  double p = 0.0;
  const double cell_area = dx * dy;
  for (int iz = 0; iz < nz; ++iz) {
    const double vol = cell_area * dz[static_cast<std::size_t>(iz)];
    for (int iy = 0; iy < ny; ++iy) {
      for (int ix = 0; ix < nx; ++ix) {
        p += q[static_cast<std::size_t>(cell(iz, iy, ix))] * vol;
      }
    }
  }
  return p;
}

ThermalGrid build_grid(const chip::ChipSpec& spec,
                       const chip::PowerAssignment& pa, int nx, int ny,
                       int refine) {
  SAUFNO_CHECK(refine >= 1 && refine <= 4, "bad refine factor");
  ThermalGrid g;
  g.nx = nx * refine;
  g.ny = ny * refine;
  g.dx = spec.die_w / g.nx;
  g.dy = spec.die_h / g.ny;
  g.h_top = spec.h_top;
  g.h_bottom = spec.h_bottom;
  g.ambient = spec.ambient;

  // Vertical layout.
  for (std::size_t li = 0; li < spec.layers.size(); ++li) {
    const auto& layer = spec.layers[li];
    const int n = z_cells_for(layer) * refine;
    for (int s = 0; s < n; ++s) {
      g.dz.push_back(layer.thickness / n);
      g.layer_of_z.push_back(static_cast<int>(li));
    }
  }
  g.nz = static_cast<int>(g.dz.size());
  g.k.assign(static_cast<std::size_t>(g.num_cells()), 0.0);
  g.c.assign(static_cast<std::size_t>(g.num_cells()), 0.0);
  g.q.assign(static_cast<std::size_t>(g.num_cells()), 0.0);

  // Conductivity: per-layer bulk value; device layers get the TSV-array
  // effective value (identity for Table I's parameters, but kept explicit).
  for (int iz = 0; iz < g.nz; ++iz) {
    const auto& layer =
        spec.layers[static_cast<std::size_t>(g.layer_of_z[static_cast<std::size_t>(iz)])];
    double kk = layer.material.conductivity;
    if (layer.is_device) {
      kk = chip::tsv_effective_conductivity(kk, spec.tsv_conductivity,
                                            spec.tsv_diameter, spec.tsv_pitch);
    }
    for (int iy = 0; iy < g.ny; ++iy) {
      for (int ix = 0; ix < g.nx; ++ix) {
        g.k[static_cast<std::size_t>(g.cell(iz, iy, ix))] = kk;
        g.c[static_cast<std::size_t>(g.cell(iz, iy, ix))] =
            layer.material.heat_capacity;
      }
    }
  }

  // Power: rasterize the assignment at grid resolution and convert areal
  // density (W/m^2) to volumetric (W/m^3) within each device layer's cells.
  chip::PowerGenerator gen(spec);
  const auto maps = gen.rasterize(pa, g.ny, g.nx);
  const auto device_layers = spec.device_layer_indices();
  SAUFNO_CHECK(maps.size() == device_layers.size(), "raster/layer mismatch");
  for (std::size_t d = 0; d < device_layers.size(); ++d) {
    const int li = device_layers[d];
    // Count the z-cells of this layer so density splits evenly among them.
    int cells_in_layer = 0;
    for (int iz = 0; iz < g.nz; ++iz) {
      if (g.layer_of_z[static_cast<std::size_t>(iz)] == li) ++cells_in_layer;
    }
    const double layer_thickness =
        spec.layers[static_cast<std::size_t>(li)].thickness;
    for (int iz = 0; iz < g.nz; ++iz) {
      if (g.layer_of_z[static_cast<std::size_t>(iz)] != li) continue;
      for (int iy = 0; iy < g.ny; ++iy) {
        for (int ix = 0; ix < g.nx; ++ix) {
          const double areal =
              maps[d][static_cast<std::size_t>(iy) * g.nx + ix];
          g.q[static_cast<std::size_t>(g.cell(iz, iy, ix))] =
              areal / layer_thickness;
        }
      }
    }
    (void)cells_in_layer;
  }
  return g;
}

}  // namespace thermal
}  // namespace saufno
