#pragma once

#include <vector>

#include "chip/power_gen.h"

namespace saufno {
namespace thermal {

/// Voxelization of a ChipSpec for the finite-volume solver.
///
/// Lateral: nx x ny uniform cells over the die footprint. Vertical: each
/// physical layer contributes `z_cells` voxels (thin layers 1, spreader 2,
/// sink 3 by default; the refined "COMSOL-substitute" mode doubles
/// everything). Cell ordering is z-major: idx = (iz * ny + iy) * nx + ix.
struct ThermalGrid {
  int nx = 0, ny = 0, nz = 0;
  double dx = 0, dy = 0;          // lateral cell size (m)
  std::vector<double> dz;         // per-z-cell thickness (m), size nz
  std::vector<int> layer_of_z;    // chip layer index per z cell
  std::vector<double> k;          // conductivity per cell (W/mK), nz*ny*nx
  std::vector<double> c;          // volumetric heat capacity (J/m^3K)
  std::vector<double> q;          // volumetric heat source (W/m^3)
  double h_top = 0, h_bottom = 0; // Robin coefficients (W/m^2K)
  double ambient = 0;             // K

  int64_t num_cells() const { return static_cast<int64_t>(nz) * ny * nx; }
  int64_t cell(int iz, int iy, int ix) const {
    return (static_cast<int64_t>(iz) * ny + iy) * nx + ix;
  }
  /// First z-cell index of a chip layer (-1 if the layer has none).
  int z_begin_of_layer(int layer) const;

  /// Total injected power, integral of q over the volume (W). Used by the
  /// energy-conservation tests.
  double total_power() const;
};

/// Mesh-refinement knob: `refine`=1 is the MTA-substitute production grid,
/// `refine`=2 doubles lateral resolution and z subdivision (the
/// finest-mesh COMSOL stand-in of Table IV).
ThermalGrid build_grid(const chip::ChipSpec& spec,
                       const chip::PowerAssignment& pa, int nx, int ny,
                       int refine = 1);

}  // namespace thermal
}  // namespace saufno
