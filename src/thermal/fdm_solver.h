#pragma once

#include <vector>

#include "thermal/grid.h"

namespace saufno {
namespace thermal {

/// Steady-state temperature field + solve diagnostics.
struct ThermalSolution {
  std::vector<double> temperature;  // K, per grid cell (z-major)
  int iterations = 0;
  double residual = 0.0;  // final relative residual ||r|| / ||b||
  bool converged = false;

  double max_temperature() const;
  double min_temperature() const;

  /// Mid-depth temperature map of one chip layer, [ny*nx] floats (for
  /// training targets and the Fig. 4/5 heatmaps).
  std::vector<float> layer_map(const ThermalGrid& g, int chip_layer) const;
};

/// `ThermalSolution::layer_map` over a raw per-cell field, without wrapping
/// it in a solution object — the form the transient per-step trajectory
/// hook uses, where copying the full 3-D field per recorded step would
/// double the generation memory traffic.
std::vector<float> layer_map_of(const std::vector<double>& field,
                                const ThermalGrid& g, int chip_layer);

/// Finite-volume steady heat solver — the MTA [33] substitute (and, at
/// refine=2, the COMSOL reference of Table IV).
///
/// Discretizes  -div(k grad T) = q  on the voxel grid with harmonic-mean
/// face conductances, adiabatic lateral walls, and Robin (convective)
/// conditions on the top (heat sink, h_top) and bottom (package, h_bottom)
/// faces — Eq. (3)-(4) of the paper. The resulting SPD system is solved
/// matrix-free with Jacobi-preconditioned conjugate gradients.
class FdmSolver {
 public:
  struct Options {
    double tol = 1e-8;      // relative residual target
    int max_iters = 20000;  // CG iteration cap
  };

  FdmSolver() = default;
  explicit FdmSolver(Options opt) : opt_(opt) {}

  ThermalSolution solve(const ThermalGrid& grid) const;

 private:
  Options opt_{};
};

}  // namespace thermal
}  // namespace saufno
