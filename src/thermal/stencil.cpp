#include "thermal/stencil.h"

#include <cmath>

#include "common/logging.h"

namespace saufno {
namespace thermal {
namespace detail {

Stencil build_stencil(const ThermalGrid& g) {
  Stencil s;
  s.nx = g.nx;
  s.ny = g.ny;
  s.nz = g.nz;
  const int64_t n = g.num_cells();
  s.diag.assign(static_cast<std::size_t>(n), 0.0);
  s.b.assign(static_cast<std::size_t>(n), 0.0);
  s.gx.assign(static_cast<std::size_t>(g.nz) * g.ny * (g.nx - 1), 0.0);
  s.gy.assign(static_cast<std::size_t>(g.nz) * (g.ny - 1) * g.nx, 0.0);
  s.gz.assign(static_cast<std::size_t>(g.nz - 1) * g.ny * g.nx, 0.0);

  auto kk = [&](int iz, int iy, int ix) {
    return g.k[static_cast<std::size_t>(g.cell(iz, iy, ix))];
  };

  for (int iz = 0; iz < g.nz; ++iz) {
    const double dzc = g.dz[static_cast<std::size_t>(iz)];
    const double ax = g.dy * dzc;  // x-face area
    const double ay = g.dx * dzc;  // y-face area
    for (int iy = 0; iy < g.ny; ++iy) {
      for (int ix = 0; ix < g.nx; ++ix) {
        const int64_t c = g.cell(iz, iy, ix);
        s.b[static_cast<std::size_t>(c)] +=
            g.q[static_cast<std::size_t>(c)] * g.dx * g.dy * dzc;
        // Harmonic-mean face conductances (half-cell resistances in
        // series) — exact for piecewise-constant conductivity.
        if (ix + 1 < g.nx) {
          const double r = 0.5 * g.dx / kk(iz, iy, ix) +
                           0.5 * g.dx / kk(iz, iy, ix + 1);
          const double gface = ax / r;
          s.gx[(static_cast<std::size_t>(iz) * g.ny + iy) * (g.nx - 1) + ix] =
              gface;
          s.diag[static_cast<std::size_t>(c)] += gface;
          s.diag[static_cast<std::size_t>(g.cell(iz, iy, ix + 1))] += gface;
        }
        if (iy + 1 < g.ny) {
          const double r = 0.5 * g.dy / kk(iz, iy, ix) +
                           0.5 * g.dy / kk(iz, iy + 1, ix);
          const double gface = ay / r;
          s.gy[(static_cast<std::size_t>(iz) * (g.ny - 1) + iy) * g.nx + ix] =
              gface;
          s.diag[static_cast<std::size_t>(c)] += gface;
          s.diag[static_cast<std::size_t>(g.cell(iz, iy + 1, ix))] += gface;
        }
        if (iz + 1 < g.nz) {
          const double r =
              0.5 * dzc / kk(iz, iy, ix) +
              0.5 * g.dz[static_cast<std::size_t>(iz + 1)] / kk(iz + 1, iy, ix);
          const double gface = g.dx * g.dy / r;
          s.gz[(static_cast<std::size_t>(iz) * g.ny + iy) * g.nx + ix] = gface;
          s.diag[static_cast<std::size_t>(c)] += gface;
          s.diag[static_cast<std::size_t>(g.cell(iz + 1, iy, ix))] += gface;
        }
      }
    }
  }

  // Robin boundaries: convective film in series with the half-cell
  // conduction path (Eq. 4 of the paper).
  for (int iy = 0; iy < g.ny; ++iy) {
    for (int ix = 0; ix < g.nx; ++ix) {
      const double a = g.dx * g.dy;
      if (g.h_top > 0.0) {
        const int iz = g.nz - 1;
        const double r =
            0.5 * g.dz[static_cast<std::size_t>(iz)] / kk(iz, iy, ix) +
            1.0 / g.h_top;
        const double gface = a / r;
        const int64_t c = g.cell(iz, iy, ix);
        s.diag[static_cast<std::size_t>(c)] += gface;
        s.b[static_cast<std::size_t>(c)] += gface * g.ambient;
      }
      if (g.h_bottom > 0.0) {
        const double r = 0.5 * g.dz[0] / kk(0, iy, ix) + 1.0 / g.h_bottom;
        const double gface = a / r;
        const int64_t c = g.cell(0, iy, ix);
        s.diag[static_cast<std::size_t>(c)] += gface;
        s.b[static_cast<std::size_t>(c)] += gface * g.ambient;
      }
    }
  }
  return s;
}

void apply(const Stencil& s, const std::vector<double>& x,
           std::vector<double>& y) {
  const int nx = s.nx, ny = s.ny, nz = s.nz;
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = s.diag[i] * x[i];
  for (int iz = 0; iz < nz; ++iz) {
    for (int iy = 0; iy < ny; ++iy) {
      const int64_t row = (static_cast<int64_t>(iz) * ny + iy);
      for (int ix = 0; ix + 1 < nx; ++ix) {
        const double gf = s.gx[static_cast<std::size_t>(row * (nx - 1) + ix)];
        const int64_t c = row * nx + ix;
        y[static_cast<std::size_t>(c)] -= gf * x[static_cast<std::size_t>(c + 1)];
        y[static_cast<std::size_t>(c + 1)] -= gf * x[static_cast<std::size_t>(c)];
      }
    }
  }
  for (int iz = 0; iz < nz; ++iz) {
    for (int iy = 0; iy + 1 < ny; ++iy) {
      for (int ix = 0; ix < nx; ++ix) {
        const double gf =
            s.gy[(static_cast<std::size_t>(iz) * (ny - 1) + iy) * nx + ix];
        const int64_t c = s.cell(iz, iy, ix);
        const int64_t d = s.cell(iz, iy + 1, ix);
        y[static_cast<std::size_t>(c)] -= gf * x[static_cast<std::size_t>(d)];
        y[static_cast<std::size_t>(d)] -= gf * x[static_cast<std::size_t>(c)];
      }
    }
  }
  for (int iz = 0; iz + 1 < nz; ++iz) {
    for (int iy = 0; iy < ny; ++iy) {
      for (int ix = 0; ix < nx; ++ix) {
        const double gf =
            s.gz[(static_cast<std::size_t>(iz) * ny + iy) * nx + ix];
        const int64_t c = s.cell(iz, iy, ix);
        const int64_t d = s.cell(iz + 1, iy, ix);
        y[static_cast<std::size_t>(c)] -= gf * x[static_cast<std::size_t>(d)];
        y[static_cast<std::size_t>(d)] -= gf * x[static_cast<std::size_t>(c)];
      }
    }
  }
}

void zline_precondition(const Stencil& s, const std::vector<double>& r,
                        std::vector<double>& z) {
  const int nx = s.nx, ny = s.ny, nz = s.nz;
  std::vector<double> cp(static_cast<std::size_t>(nz));
  std::vector<double> dp(static_cast<std::size_t>(nz));
  for (int iy = 0; iy < ny; ++iy) {
    for (int ix = 0; ix < nx; ++ix) {
      for (int iz = 0; iz < nz; ++iz) {
        const int64_t c = s.cell(iz, iy, ix);
        const double bi = s.diag[static_cast<std::size_t>(c)];
        const double ci =
            iz + 1 < nz
                ? -s.gz[(static_cast<std::size_t>(iz) * ny + iy) * nx + ix]
                : 0.0;
        const double ai =
            iz > 0
                ? -s.gz[(static_cast<std::size_t>(iz - 1) * ny + iy) * nx + ix]
                : 0.0;
        if (iz == 0) {
          cp[0] = ci / bi;
          dp[0] = r[static_cast<std::size_t>(c)] / bi;
        } else {
          const double m = bi - ai * cp[static_cast<std::size_t>(iz - 1)];
          cp[static_cast<std::size_t>(iz)] = ci / m;
          dp[static_cast<std::size_t>(iz)] =
              (r[static_cast<std::size_t>(c)] -
               ai * dp[static_cast<std::size_t>(iz - 1)]) /
              m;
        }
      }
      for (int iz = nz - 1; iz >= 0; --iz) {
        const int64_t c = s.cell(iz, iy, ix);
        z[static_cast<std::size_t>(c)] =
            dp[static_cast<std::size_t>(iz)] -
            (iz + 1 < nz
                 ? cp[static_cast<std::size_t>(iz)] *
                       z[static_cast<std::size_t>(s.cell(iz + 1, iy, ix))]
                 : 0.0);
      }
    }
  }
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

CgResult pcg_solve(const Stencil& s, const std::vector<double>& rhs,
                   std::vector<double>& x, double tol, int max_iters) {
  const std::size_t n = rhs.size();
  std::vector<double> r(n), z(n), p(n), ap(n);
  apply(s, x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = rhs[i] - ap[i];
  const double bnorm = std::sqrt(dot(rhs, rhs));
  const double stop = tol * (bnorm > 0 ? bnorm : 1.0);

  zline_precondition(s, r, z);
  p = z;
  double rz = dot(r, z);
  CgResult res;
  double rnorm = std::sqrt(dot(r, r));
  while (rnorm > stop && res.iterations < max_iters) {
    apply(s, p, ap);
    const double alpha = rz / dot(p, ap);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    zline_precondition(s, r, z);
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    rnorm = std::sqrt(dot(r, r));
    ++res.iterations;
  }
  res.residual = bnorm > 0 ? rnorm / bnorm : rnorm;
  res.converged = rnorm <= stop;
  return res;
}

}  // namespace detail
}  // namespace thermal
}  // namespace saufno
