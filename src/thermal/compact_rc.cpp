#include "thermal/compact_rc.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "thermal/stencil.h"

namespace saufno {
namespace thermal {
namespace {
/// Lumped-sink derating shared by block and grid modes: compact models
/// cannot credit in-plane spreading inside the copper, which is the bias
/// that puts HotSpot ~10 K above the field solvers in the paper's
/// Table IV.
constexpr double kLumpedSinkDerate = 0.68;
}  // namespace
}  // namespace thermal
}  // namespace saufno

namespace saufno {
namespace thermal {
namespace {

/// Dense Gaussian elimination with partial pivoting; the network has tens
/// of nodes, so O(n^3) is instantaneous.
std::vector<double> solve_dense(std::vector<std::vector<double>> a,
                                std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[piv][col])) piv = r;
    }
    SAUFNO_CHECK(std::fabs(a[piv][col]) > 1e-30,
                 "singular thermal network matrix");
    std::swap(a[col], a[piv]);
    std::swap(b[col], b[piv]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r][col] / a[col][col];
      if (f == 0.0) continue;
      for (std::size_t cc = col; cc < n; ++cc) a[r][cc] -= f * a[col][cc];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double s = b[ri];
    for (std::size_t cc = ri + 1; cc < n; ++cc) s -= a[ri][cc] * x[cc];
    x[ri] = s / a[ri][ri];
  }
  return x;
}

}  // namespace

double CompactRcSolver::Result::max_temperature() const {
  SAUFNO_CHECK(!blocks.empty(), "empty RC result");
  double m = blocks[0].temperature;
  for (const auto& b : blocks) m = std::max(m, b.temperature);
  return m;
}

double CompactRcSolver::Result::min_temperature() const {
  SAUFNO_CHECK(!blocks.empty(), "empty RC result");
  double m = blocks[0].temperature;
  for (const auto& b : blocks) m = std::min(m, b.temperature);
  return m;
}

CompactRcSolver::CompactRcSolver(const chip::ChipSpec& spec) : spec_(spec) {
  spec_.validate();
}

CompactRcSolver::Result CompactRcSolver::solve(
    const chip::PowerAssignment& pa) const {
  // Node layout: device-layer blocks first (in stack order), then one
  // lumped node per non-device layer.
  struct NodeInfo {
    int layer;
    int block = -1;  // -1 for lumped layer nodes
  };
  std::vector<NodeInfo> nodes;
  // node id of (layer, block); lumped layers keyed by block = -1.
  auto node_of = [&](int layer, int block) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].layer == layer && nodes[i].block == block) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };
  for (std::size_t li = 0; li < spec_.layers.size(); ++li) {
    const auto& layer = spec_.layers[li];
    if (layer.is_device) {
      for (std::size_t b = 0; b < layer.floorplan.blocks.size(); ++b) {
        nodes.push_back({static_cast<int>(li), static_cast<int>(b)});
      }
    } else {
      nodes.push_back({static_cast<int>(li), -1});
    }
  }
  const std::size_t n = nodes.size();
  std::vector<std::vector<double>> g(n, std::vector<double>(n, 0.0));
  std::vector<double> rhs(n, 0.0);
  const double die_area = spec_.die_w * spec_.die_h;

  auto add_conductance = [&](int a, int b, double cond) {
    g[static_cast<std::size_t>(a)][static_cast<std::size_t>(a)] += cond;
    g[static_cast<std::size_t>(b)][static_cast<std::size_t>(b)] += cond;
    g[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] -= cond;
    g[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] -= cond;
  };
  auto add_to_ambient = [&](int a, double cond) {
    g[static_cast<std::size_t>(a)][static_cast<std::size_t>(a)] += cond;
    rhs[static_cast<std::size_t>(a)] += cond * spec_.ambient;
  };

  // Vertical coupling between consecutive layers.
  for (std::size_t li = 0; li + 1 < spec_.layers.size(); ++li) {
    const auto& lo = spec_.layers[li];
    const auto& hi = spec_.layers[li + 1];
    const double rv_unit =  // K*m^2/W through the two half-layers
        0.5 * lo.thickness / lo.material.conductivity +
        0.5 * hi.thickness / hi.material.conductivity;
    auto blocks_of = [&](const chip::LayerSpec& l)
        -> std::vector<std::pair<int, double>> {
      // (block index or -1, area fraction) pairs.
      std::vector<std::pair<int, double>> out;
      if (l.is_device) {
        for (std::size_t b = 0; b < l.floorplan.blocks.size(); ++b) {
          out.emplace_back(static_cast<int>(b),
                           l.floorplan.blocks[b].area_fraction());
        }
      } else {
        out.emplace_back(-1, 1.0);
      }
      return out;
    };
    for (const auto& [bl, fl] : blocks_of(lo)) {
      for (const auto& [bh, fh] : blocks_of(hi)) {
        double overlap_frac;
        if (bl >= 0 && bh >= 0) {
          const auto& rb = lo.floorplan.blocks[static_cast<std::size_t>(bl)];
          const auto& rt = hi.floorplan.blocks[static_cast<std::size_t>(bh)];
          overlap_frac =
              rb.overlap(rt.x, rt.y, rt.x + rt.w, rt.y + rt.h);
        } else if (bl >= 0) {
          overlap_frac = fl;
        } else if (bh >= 0) {
          overlap_frac = fh;
        } else {
          overlap_frac = 1.0;
        }
        if (overlap_frac <= 0.0) continue;
        const double area = overlap_frac * die_area;
        add_conductance(node_of(static_cast<int>(li), bl),
                        node_of(static_cast<int>(li + 1), bh),
                        area / rv_unit);
      }
    }
  }

  // Lateral coupling between edge-sharing blocks within a device layer.
  for (std::size_t li = 0; li < spec_.layers.size(); ++li) {
    const auto& layer = spec_.layers[li];
    if (!layer.is_device) continue;
    const auto& blocks = layer.floorplan.blocks;
    for (std::size_t a = 0; a < blocks.size(); ++a) {
      for (std::size_t b = a + 1; b < blocks.size(); ++b) {
        const auto& ba = blocks[a];
        const auto& bb = blocks[b];
        // Shared edge length (normalized) if the rectangles abut.
        constexpr double kEps = 1e-9;
        double shared = 0.0;
        const bool abut_x = std::fabs(ba.x + ba.w - bb.x) < kEps ||
                            std::fabs(bb.x + bb.w - ba.x) < kEps;
        const bool abut_y = std::fabs(ba.y + ba.h - bb.y) < kEps ||
                            std::fabs(bb.y + bb.h - ba.y) < kEps;
        if (abut_x) {
          shared = std::max(0.0, std::min(ba.y + ba.h, bb.y + bb.h) -
                                     std::max(ba.y, bb.y));
          shared *= spec_.die_h;
        } else if (abut_y) {
          shared = std::max(0.0, std::min(ba.x + ba.w, bb.x + bb.w) -
                                     std::max(ba.x, bb.x));
          shared *= spec_.die_w;
        }
        if (shared <= 0.0) continue;
        // Centroid distance in metres.
        const double cxa = (ba.x + ba.w / 2) * spec_.die_w;
        const double cya = (ba.y + ba.h / 2) * spec_.die_h;
        const double cxb = (bb.x + bb.w / 2) * spec_.die_w;
        const double cyb = (bb.y + bb.h / 2) * spec_.die_h;
        const double dist = std::hypot(cxa - cxb, cya - cyb);
        const double cond =
            layer.material.conductivity * layer.thickness * shared / dist;
        add_conductance(node_of(static_cast<int>(li), static_cast<int>(a)),
                        node_of(static_cast<int>(li), static_cast<int>(b)),
                        cond);
      }
    }
  }

  // Boundary paths: the derated sink (see kLumpedSinkDerate above).
  {
    const int top = node_of(static_cast<int>(spec_.layers.size()) - 1, -1);
    const int top_dev =
        top >= 0 ? top
                 : node_of(static_cast<int>(spec_.layers.size()) - 1, 0);
    (void)top_dev;
    SAUFNO_CHECK(top >= 0, "topmost layer expected to be a lumped layer");
    add_to_ambient(top, spec_.h_top * kLumpedSinkDerate * die_area);
  }
  {
    // Bottom layer: every node of layer 0 leaks through the package.
    const auto& l0 = spec_.layers[0];
    if (l0.is_device) {
      for (std::size_t b = 0; b < l0.floorplan.blocks.size(); ++b) {
        add_to_ambient(node_of(0, static_cast<int>(b)),
                       spec_.h_bottom * die_area *
                           l0.floorplan.blocks[b].area_fraction());
      }
    } else {
      add_to_ambient(node_of(0, -1), spec_.h_bottom * die_area);
    }
  }

  // Power injection.
  for (std::size_t li = 0; li < spec_.layers.size(); ++li) {
    if (!spec_.layers[li].is_device) continue;
    SAUFNO_CHECK(li < pa.power.size() && pa.power[li].size() ==
                     spec_.layers[li].floorplan.blocks.size(),
                 "power assignment does not match chip spec");
    for (std::size_t b = 0; b < pa.power[li].size(); ++b) {
      rhs[static_cast<std::size_t>(
          node_of(static_cast<int>(li), static_cast<int>(b)))] +=
          pa.power[li][b];
    }
  }

  const std::vector<double> t = solve_dense(g, rhs);
  Result res;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& nd = nodes[i];
    std::string name;
    if (nd.block >= 0) {
      name = spec_.layers[static_cast<std::size_t>(nd.layer)]
                 .floorplan.blocks[static_cast<std::size_t>(nd.block)]
                 .name;
    } else {
      name = spec_.layers[static_cast<std::size_t>(nd.layer)].name;
    }
    res.blocks.push_back({name, nd.layer, t[i]});
  }
  return res;
}

CompactRcSolver::GridResult CompactRcSolver::solve_grid(
    const chip::PowerAssignment& pa, int res, double tol,
    int max_iters) const {
  SAUFNO_CHECK(res >= 4, "grid mode needs at least a 4x4 lateral grid");
  // Same voxelization as the field solver, same derated sink as block
  // mode; the method difference — Gauss-Seidel relaxation instead of
  // preconditioned CG — is what makes grid-mode compact tools slow on the
  // stiff, high-aspect-ratio chip stack.
  chip::ChipSpec derated = spec_;
  derated.h_top *= kLumpedSinkDerate;
  const ThermalGrid grid = build_grid(derated, pa, res, res);
  const detail::Stencil s = detail::build_stencil(grid);

  const std::size_t n = static_cast<std::size_t>(grid.num_cells());
  std::vector<double> t(n, grid.ambient);
  const double bnorm = std::sqrt(detail::dot(s.b, s.b));
  const double stop = tol * (bnorm > 0 ? bnorm : 1.0);
  const int nx = grid.nx, ny = grid.ny, nz = grid.nz;

  GridResult out;
  std::vector<double> r(n);
  while (out.iterations < max_iters) {
    // One Gauss-Seidel sweep in lexicographic order.
    for (int iz = 0; iz < nz; ++iz) {
      for (int iy = 0; iy < ny; ++iy) {
        for (int ix = 0; ix < nx; ++ix) {
          const int64_t c = s.cell(iz, iy, ix);
          double acc = s.b[static_cast<std::size_t>(c)];
          if (ix > 0) {
            acc += s.gx[(static_cast<std::size_t>(iz) * ny + iy) * (nx - 1) +
                        ix - 1] *
                   t[static_cast<std::size_t>(c - 1)];
          }
          if (ix + 1 < nx) {
            acc += s.gx[(static_cast<std::size_t>(iz) * ny + iy) * (nx - 1) +
                        ix] *
                   t[static_cast<std::size_t>(c + 1)];
          }
          if (iy > 0) {
            acc += s.gy[(static_cast<std::size_t>(iz) * (ny - 1) + iy - 1) *
                            nx +
                        ix] *
                   t[static_cast<std::size_t>(s.cell(iz, iy - 1, ix))];
          }
          if (iy + 1 < ny) {
            acc +=
                s.gy[(static_cast<std::size_t>(iz) * (ny - 1) + iy) * nx + ix] *
                t[static_cast<std::size_t>(s.cell(iz, iy + 1, ix))];
          }
          if (iz > 0) {
            acc += s.gz[(static_cast<std::size_t>(iz - 1) * ny + iy) * nx +
                        ix] *
                   t[static_cast<std::size_t>(s.cell(iz - 1, iy, ix))];
          }
          if (iz + 1 < nz) {
            acc += s.gz[(static_cast<std::size_t>(iz) * ny + iy) * nx + ix] *
                   t[static_cast<std::size_t>(s.cell(iz + 1, iy, ix))];
          }
          t[static_cast<std::size_t>(c)] =
              acc / s.diag[static_cast<std::size_t>(c)];
        }
      }
    }
    ++out.iterations;
    // Residual check every few sweeps (the check itself costs a matvec).
    if (out.iterations % 16 == 0 || out.iterations == max_iters) {
      detail::apply(s, t, r);
      for (std::size_t i = 0; i < n; ++i) r[i] = s.b[i] - r[i];
      if (std::sqrt(detail::dot(r, r)) <= stop) {
        out.converged = true;
        break;
      }
    }
  }
  out.max_temperature = *std::max_element(t.begin(), t.end());
  out.min_temperature = *std::min_element(t.begin(), t.end());
  return out;
}

}  // namespace thermal
}  // namespace saufno
