#include "baselines/fno.h"

#include <memory>

namespace saufno {
namespace baselines {

Fno::Fno(const Config& cfg, Rng& rng) : cfg_(cfg) {
  lift1_ = register_module(
      "lift1",
      std::make_shared<nn::PointwiseConv>(cfg.in_channels, cfg.width, rng));
  lift2_ = register_module(
      "lift2",
      std::make_shared<nn::PointwiseConv>(cfg.width, cfg.width, rng));
  for (int64_t i = 0; i < cfg.n_layers; ++i) {
    core::UFourierLayer::Config lc;
    lc.width = cfg.width;
    lc.modes1 = cfg.modes1;
    lc.modes2 = cfg.modes2;
    lc.with_unet = false;  // Eq. (6): sigma(K v + W v) only
    lc.final_activation = true;
    layers_.push_back(register_module(
        "layer" + std::to_string(i),
        std::make_shared<core::UFourierLayer>(lc, rng)));
  }
  proj1_ = register_module(
      "proj1",
      std::make_shared<nn::PointwiseConv>(cfg.width, 2 * cfg.width, rng));
  proj2_ = register_module(
      "proj2", std::make_shared<nn::PointwiseConv>(2 * cfg.width,
                                                   cfg.out_channels, rng));
}

Var Fno::forward(const Var& x) {
  Var v = lift2_->forward(ops::gelu(lift1_->forward(x)));
  for (auto* layer : layers_) v = layer->forward(v);
  return proj2_->forward(ops::gelu(proj1_->forward(v)));
}

}  // namespace baselines
}  // namespace saufno
