#pragma once

#include "baselines/fno.h"
#include "nn/linear.h"

namespace saufno {
namespace baselines {

/// GAR baseline [36] — generalized autoregression for multi-fidelity
/// fusion, adapted as a thermal operator (the "GAR" row of Table II).
///
/// GAR's essence is autoregressive fusion: a coarse (low-fidelity)
/// prediction is lifted to the target fidelity and combined with the input
/// through a learned (tensor-)linear map. Our executable reading:
///
///   y_lo = CoarseOp(downsample(x))        — small FNO at half resolution
///   y    = alpha * upsample(y_lo) + LinearResidual(x)
///
/// where LinearResidual is a pointwise channel map (GAR's transfer matrices
/// are linear; spatially-global tensor algebra is approximated by the
/// resolution lift). GAR lacks U-Net/attention machinery for local
/// high-frequency structure, and — as in the paper's Table II — trails the
/// FNO family on junction-temperature accuracy.
class Gar : public nn::Module {
 public:
  struct Config {
    int64_t in_channels = 3;
    int64_t out_channels = 1;
    int64_t coarse_width = 8;   // internal coarse FNO width
    int64_t coarse_modes = 6;
    int64_t coarse_layers = 2;
  };

  Gar(const Config& cfg, Rng& rng);
  Var forward(const Var& x) override;

 private:
  Config cfg_;
  Fno* coarse_;
  nn::PointwiseConv* residual_;
  Var alpha_;  // learnable fusion weight (scalar per output channel)
};

}  // namespace baselines
}  // namespace saufno
