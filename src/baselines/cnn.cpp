#include "baselines/cnn.h"

#include <memory>

namespace saufno {
namespace baselines {

Cnn::Cnn(const Config& cfg, Rng& rng) : cfg_(cfg) {
  int64_t cin = cfg.in_channels;
  for (int64_t i = 0; i < cfg.depth; ++i) {
    const int64_t cout = (i == cfg.depth - 1) ? cfg.out_channels : cfg.hidden;
    convs_.push_back(register_module(
        "conv" + std::to_string(i),
        std::make_shared<nn::Conv2d>(cin, cout, 3, rng, 1, 1)));
    cin = cout;
  }
}

Var Cnn::forward(const Var& x) {
  Var cur = x;
  for (std::size_t i = 0; i < convs_.size(); ++i) {
    cur = convs_[i]->forward(cur);
    if (i + 1 < convs_.size()) cur = relu_.forward(cur);
  }
  return cur;
}

}  // namespace baselines
}  // namespace saufno
