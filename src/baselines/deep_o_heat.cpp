#include "baselines/deep_o_heat.h"

#include <memory>

#include "common/logging.h"

namespace saufno {
namespace baselines {

DeepOHeat::DeepOHeat(const Config& cfg, Rng& rng) : cfg_(cfg) {
  const int64_t branch_in =
      cfg.in_channels * cfg.sensor_grid * cfg.sensor_grid;
  auto branch = std::make_shared<nn::Sequential>();
  branch->append(std::make_shared<nn::Linear>(branch_in, cfg.hidden, rng));
  branch->append(std::make_shared<nn::Tanh>());
  for (int64_t i = 1; i < cfg.depth; ++i) {
    branch->append(std::make_shared<nn::Linear>(cfg.hidden, cfg.hidden, rng));
    branch->append(std::make_shared<nn::Tanh>());
  }
  branch->append(std::make_shared<nn::Linear>(
      cfg.hidden, cfg.out_channels * cfg.p, rng));
  branch_ = register_module("branch", branch);

  auto trunk = std::make_shared<nn::Sequential>();
  trunk->append(std::make_shared<nn::Linear>(2, cfg.hidden, rng));
  trunk->append(std::make_shared<nn::Tanh>());
  for (int64_t i = 1; i < cfg.depth; ++i) {
    trunk->append(std::make_shared<nn::Linear>(cfg.hidden, cfg.hidden, rng));
    trunk->append(std::make_shared<nn::Tanh>());
  }
  trunk->append(std::make_shared<nn::Linear>(cfg.hidden, cfg.p, rng));
  trunk_ = register_module("trunk", trunk);

  out_bias_ = register_parameter(
      "out_bias", Var(Tensor::zeros({cfg.out_channels}), true));
}

Tensor DeepOHeat::make_coords(int64_t h, int64_t w) const {
  Tensor coords({h * w, 2});
  float* p = coords.data();
  for (int64_t i = 0; i < h; ++i) {
    const float y = h > 1 ? static_cast<float>(i) / (h - 1) : 0.f;
    for (int64_t j = 0; j < w; ++j) {
      const float x = w > 1 ? static_cast<float>(j) / (w - 1) : 0.f;
      p[(i * w + j) * 2 + 0] = y;
      p[(i * w + j) * 2 + 1] = x;
    }
  }
  return coords;
}

Var DeepOHeat::forward(const Var& x) {
  SAUFNO_CHECK(x.value().dim() == 4, "DeepOHeat input must be [B,C,H,W]");
  const int64_t B = x.size(0), H = x.size(2), W = x.size(3);

  // Branch: resample the input field to the fixed sensor grid. The resize
  // is differentiable, so gradients still reach the raw input if needed.
  Var sensors = ops::resize_bilinear(x, cfg_.sensor_grid, cfg_.sensor_grid);
  sensors = ops::reshape(
      sensors, {B, cfg_.in_channels * cfg_.sensor_grid * cfg_.sensor_grid});
  Var b_feat = branch_->forward(sensors);  // [B, out_ch * p]
  b_feat = ops::reshape(b_feat, {B * cfg_.out_channels, cfg_.p});

  // Trunk: per-pixel coordinate features, shared across the batch.
  Var coords(make_coords(H, W));          // [N, 2], constant
  Var t_feat = trunk_->forward(coords);   // [N, p]

  // Inner product: [B*out_ch, p] x [p, N] -> [B*out_ch, N].
  Var y = ops::matmul(b_feat, ops::permute(t_feat, {1, 0}));
  y = ops::reshape(y, {B, cfg_.out_channels, H, W});
  // Per-channel output bias, broadcast over space.
  Var bias = ops::reshape(out_bias_, {1, cfg_.out_channels, 1, 1});
  return ops::add(y, bias);
}

}  // namespace baselines
}  // namespace saufno
