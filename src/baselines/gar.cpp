#include "baselines/gar.h"

#include <memory>

#include "common/logging.h"

namespace saufno {
namespace baselines {

Gar::Gar(const Config& cfg, Rng& rng) : cfg_(cfg) {
  Fno::Config fc;
  fc.in_channels = cfg.in_channels;
  fc.out_channels = cfg.out_channels;
  fc.width = cfg.coarse_width;
  fc.modes1 = cfg.coarse_modes;
  fc.modes2 = cfg.coarse_modes;
  fc.n_layers = cfg.coarse_layers;
  coarse_ = register_module("coarse", std::make_shared<Fno>(fc, rng));
  residual_ = register_module(
      "residual",
      std::make_shared<nn::PointwiseConv>(cfg.in_channels, cfg.out_channels,
                                          rng));
  alpha_ = register_parameter(
      "alpha", Var(Tensor::ones({cfg.out_channels}), /*requires_grad=*/true));
}

Var Gar::forward(const Var& x) {
  SAUFNO_CHECK(x.value().dim() == 4, "Gar input must be [B,C,H,W]");
  const int64_t H = x.size(2), W = x.size(3);
  // Coarse stage: operate at half resolution (floor, min 4).
  const int64_t ch = std::max<int64_t>(4, H / 2);
  const int64_t cw = std::max<int64_t>(4, W / 2);
  Var y_lo = coarse_->forward(ops::resize_bilinear(x, ch, cw));
  Var lifted = ops::resize_bilinear(y_lo, H, W);
  Var a = ops::reshape(alpha_, {1, cfg_.out_channels, 1, 1});
  return ops::add(ops::mul(lifted, a), residual_->forward(x));
}

}  // namespace baselines
}  // namespace saufno
