#pragma once

#include "nn/activation.h"
#include "nn/conv.h"

namespace saufno {
namespace baselines {

/// Plain convolutional baseline in the spirit of Hua et al. [17]: a stack
/// of same-resolution 3x3 convolutions mapping power maps to temperature
/// maps. It has no operator structure — Section IV-B notes that such
/// networks "lack resolution invariance and were not extensively compared
/// for fairness"; it is included here for the related-work comparison and
/// as a sanity baseline for the training substrate.
class Cnn : public nn::Module {
 public:
  struct Config {
    int64_t in_channels = 3;
    int64_t out_channels = 1;
    int64_t hidden = 24;
    int64_t depth = 4;
  };

  Cnn(const Config& cfg, Rng& rng);
  Var forward(const Var& x) override;

 private:
  Config cfg_;
  std::vector<nn::Conv2d*> convs_;
  nn::ReLU relu_;
};

}  // namespace baselines
}  // namespace saufno
