#pragma once

#include "nn/activation.h"
#include "nn/linear.h"

namespace saufno {
namespace baselines {

/// DeepOHeat baseline [21]: DeepONet-style operator learning for thermal
/// fields. A branch net encodes the power distribution (sampled at a fixed
/// sensor grid so the model stays resolution independent) and a trunk net
/// encodes query coordinates; the prediction at a pixel is the inner
/// product of branch and trunk features:
///
///   T(b, c, y, x) = sum_p  branch_p(power_b)[c] * trunk_p(y, x)  + bias_c
///
/// This is the "DeepOHeat" row of Table II. The published system couples
/// this with physics-informed training; here it is trained on the same
/// supervised data as every other model so that Table II compares
/// architectures, not training signals (the paper does the same).
class DeepOHeat : public nn::Module {
 public:
  struct Config {
    int64_t in_channels = 3;
    int64_t out_channels = 1;
    int64_t sensor_grid = 16;  // branch input is resampled to this size
    int64_t hidden = 64;       // MLP width of branch and trunk
    int64_t p = 32;            // basis count (inner-product dimension)
    int64_t depth = 3;         // hidden layers per net
  };

  DeepOHeat(const Config& cfg, Rng& rng);
  Var forward(const Var& x) override;

 private:
  /// Trunk input: [N, 2] normalized (y, x) coordinates for an HxW grid.
  Tensor make_coords(int64_t h, int64_t w) const;

  Config cfg_;
  nn::Sequential* branch_;
  nn::Sequential* trunk_;
  Var out_bias_;  // [out_channels]
};

}  // namespace baselines
}  // namespace saufno
