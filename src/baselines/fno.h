#pragma once

#include "core/ufno_layer.h"
#include "nn/linear.h"

namespace saufno {
namespace baselines {

/// Plain Fourier Neural Operator baseline (Li et al. [23]): lifting,
/// `n_layers` Fourier layers (Eq. 6 — no U-Net bypass), projection.
/// This is the "FNO" row of Table II and the first column of Table III.
class Fno : public nn::Module {
 public:
  struct Config {
    int64_t in_channels = 3;
    int64_t out_channels = 1;
    int64_t width = 16;
    int64_t modes1 = 12;
    int64_t modes2 = 12;
    int64_t n_layers = 4;
  };

  Fno(const Config& cfg, Rng& rng);
  Var forward(const Var& x) override;

 private:
  Config cfg_;
  nn::PointwiseConv* lift1_;
  nn::PointwiseConv* lift2_;
  std::vector<core::UFourierLayer*> layers_;
  nn::PointwiseConv* proj1_;
  nn::PointwiseConv* proj2_;
};

}  // namespace baselines
}  // namespace saufno
